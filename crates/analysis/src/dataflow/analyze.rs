//! The static schedule analyzer.
//!
//! [`analyze`] takes a declared [`SdfGraph`] and produces a
//! [`ScheduleReport`]: typed `schedule/*` diagnostics plus, whenever the
//! rates balance, a [`ScheduleAnalysis`] with the repetition vector, the
//! minimal safe capacity of every channel, and the analytic critical
//! path of one steady-state iteration.
//!
//! The rate mathematics itself (balance-equation solve, minimal bounds,
//! steady-state simulation, busy times) lives in [`hd_dataflow::solve`]
//! and is shared verbatim with the executing runtime
//! ([`hd_dataflow::runtime`]), so what this analyzer proves is exactly
//! what the runtime runs.

use std::fmt;

use hd_dataflow::graph::{Resource, SdfGraph};
use hd_dataflow::solve;
use wide_nn::diag::Diagnostic;

/// Quantitative results of a successful rate analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleAnalysis {
    /// Stage names, in [`SdfGraph::stages`] order (for reporting).
    pub stage_names: Vec<String>,
    /// Firings of each stage per steady-state iteration, in
    /// [`SdfGraph::stages`] order — the smallest positive solution of
    /// the balance equations.
    pub repetition: Vec<u64>,
    /// Minimal safe capacity of each channel, in
    /// [`SdfGraph::channels`] order: `produce + consume - gcd`, and
    /// never below the initial token count.
    pub min_capacities: Vec<usize>,
    /// Busy seconds per resource over one iteration:
    /// `Σ repetition × cost` of the stages pinned to it, ordered
    /// devices, host, links.
    pub resource_busy_s: Vec<(Resource, f64)>,
    /// Elapsed seconds one iteration cannot beat:
    /// `overhead + max(resource busy times)`. Resources serialize
    /// internally and overlap with each other.
    pub critical_path_s: f64,
}

/// Outcome of analyzing one declared schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleReport {
    /// Name of the analyzed graph.
    pub graph: String,
    /// All `schedule/*` findings, in emission order.
    pub diagnostics: Vec<Diagnostic>,
    /// Quantitative analysis; `None` when the rates are inconsistent
    /// (no repetition vector exists to analyze further).
    pub analysis: Option<ScheduleAnalysis>,
}

impl ScheduleReport {
    /// Whether any diagnostic is an error (the schedule is unsafe).
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == wide_nn::diag::Severity::Error)
    }
}

impl fmt::Display for ScheduleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let verdict = if self.has_errors() {
            "REJECTED"
        } else if self.diagnostics.is_empty() {
            "ok"
        } else {
            "ok (with warnings)"
        };
        writeln!(f, "schedule `{}`: {verdict}", self.graph)?;
        if let Some(analysis) = &self.analysis {
            write!(f, "  repetition:")?;
            for (name, reps) in analysis.stage_names.iter().zip(&analysis.repetition) {
                write!(f, " {name}x{reps}")?;
            }
            writeln!(f)?;
            for (resource, busy) in &analysis.resource_busy_s {
                writeln!(f, "  busy {resource}: {busy:.3e} s/iter")?;
            }
            writeln!(
                f,
                "  critical path: {:.3e} s/iter (incl. overhead)",
                analysis.critical_path_s
            )?;
        }
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

/// Builds the `schedule/deadlock` diagnostic for a stalled state.
fn deadlock_diag(graph: &SdfGraph, tokens: &[usize], remaining: &[u64]) -> Diagnostic {
    let mut stuck = Vec::new();
    let mut reason = String::new();
    for (s, stage) in graph.stages().iter().enumerate() {
        if remaining[s] == 0 {
            continue;
        }
        stuck.push(stage.name.clone());
        if !reason.is_empty() {
            continue;
        }
        for (c, channel) in graph.channels().iter().enumerate() {
            if channel.to.index() == s && tokens[c] < channel.consume {
                reason = format!(
                    "`{}` waits for {} token(s) on `{}` which holds {}",
                    stage.name,
                    channel.consume,
                    graph.channel_label(channel),
                    tokens[c]
                );
                break;
            }
            if channel.from.index() == s {
                if let Some(cap) = channel.capacity {
                    if tokens[c] + channel.produce > cap {
                        reason = format!(
                            "`{}` has no space on `{}` (capacity {cap}, holding {})",
                            stage.name,
                            graph.channel_label(channel),
                            tokens[c]
                        );
                        break;
                    }
                }
            }
        }
    }
    Diagnostic::error(
        "schedule/deadlock",
        format!(
            "steady-state execution stalls with unfired stages [{}]: {reason}",
            stuck.join(", ")
        ),
    )
    .with_help(
        "break the zero-token dependency cycle with initial tokens (a pipeline delay) \
         or raise the blocking channel's capacity",
    )
}

/// Orders keyed diagnostics by (stage index, channel index) — stable,
/// so findings at the same position keep their emission order — and
/// strips the keys.
fn finish(mut keyed: Vec<((usize, usize), Diagnostic)>) -> Vec<Diagnostic> {
    keyed.sort_by_key(|&(key, _)| key);
    keyed.into_iter().map(|(_, d)| d).collect()
}

/// Analyzes a declared schedule: rate consistency, repetition vector,
/// buffer bounds, deadlock freedom, and the analytic critical path.
#[must_use]
pub fn analyze(graph: &SdfGraph) -> ScheduleReport {
    // Diagnostics carry a (stage index, channel index) sort key so the
    // report order is deterministic and position-based, independent of
    // the order the checks below happen to run in. Whole-graph findings
    // (deadlock) key past every per-channel one.
    let mut keyed: Vec<((usize, usize), Diagnostic)> = Vec::new();
    let stage_count = graph.stages().len();

    // Structural validity: every channel must name real stages and
    // positive rates, otherwise no balance equation is meaningful.
    for (c, channel) in graph.channels().iter().enumerate() {
        if channel.from.index() >= stage_count || channel.to.index() >= stage_count {
            keyed.push((
                (channel.from.index().min(stage_count), c),
                Diagnostic::error(
                    "schedule/rate-inconsistent",
                    "a channel references a stage that is not part of this graph".to_string(),
                ),
            ));
        } else if channel.produce == 0 || channel.consume == 0 {
            keyed.push((
                (channel.from.index(), c),
                Diagnostic::error(
                    "schedule/rate-inconsistent",
                    format!(
                        "channel `{}` declares a zero token rate (produce {}, consume {})",
                        graph.channel_label(channel),
                        channel.produce,
                        channel.consume
                    ),
                )
                .with_help("every firing must move at least one token"),
            ));
        }
    }
    if !keyed.is_empty() {
        return ScheduleReport {
            graph: graph.name().to_string(),
            diagnostics: finish(keyed),
            analysis: None,
        };
    }

    let repetition = match solve::repetition_vector(graph) {
        Ok(reps) => reps,
        Err(err) => {
            let diag = match err {
                solve::RateError::Inconsistent { channel } => {
                    let channel = &graph.channels()[channel];
                    Diagnostic::error(
                        "schedule/rate-inconsistent",
                        format!(
                            "channel `{}` (produce {}, consume {}) contradicts the rates \
                             implied by the rest of the graph: no balanced repetition \
                             vector exists",
                            graph.channel_label(channel),
                            channel.produce,
                            channel.consume
                        ),
                    )
                    .with_help(
                        "every cycle of rate ratios must multiply to 1; fix the \
                         production/consumption declaration of this channel",
                    )
                }
                // Structural errors were already reported above; if the
                // solver still surfaces one, report it rather than panic.
                solve::RateError::Dangling { .. } => Diagnostic::error(
                    "schedule/rate-inconsistent",
                    "a channel references a stage that is not part of this graph".to_string(),
                ),
                solve::RateError::ZeroRate { channel } => {
                    let channel = &graph.channels()[channel];
                    Diagnostic::error(
                        "schedule/rate-inconsistent",
                        format!(
                            "channel `{}` declares a zero token rate (produce {}, consume {})",
                            graph.channel_label(channel),
                            channel.produce,
                            channel.consume
                        ),
                    )
                    .with_help("every firing must move at least one token")
                }
            };
            return ScheduleReport {
                graph: graph.name().to_string(),
                diagnostics: vec![diag],
                analysis: None,
            };
        }
    };

    // Self-loops that can never gather their own first tokens.
    for (c, channel) in graph.channels().iter().enumerate() {
        if channel.from == channel.to && channel.initial_tokens < channel.consume {
            keyed.push((
                (channel.from.index(), c),
                Diagnostic::error(
                    "schedule/resource-self-cycle",
                    format!(
                        "stage `{}` feeds itself through `{}` holding {} initial token(s) \
                         but consuming {} per firing: it can never fire",
                        graph.stages()[channel.from.index()].name,
                        graph.channel_label(channel),
                        channel.initial_tokens,
                        channel.consume
                    ),
                )
                .with_help("seed the self-loop with at least `consume` initial tokens"),
            ));
        }
    }

    // Minimal safe bounds and overlap depth per channel.
    let mut min_capacities = Vec::with_capacity(graph.channels().len());
    for (c, channel) in graph.channels().iter().enumerate() {
        let min_bound = solve::min_capacity(channel);
        min_capacities.push(min_bound);
        let Some(declared) = channel.capacity else {
            continue;
        };
        if declared < min_bound {
            keyed.push((
                (channel.from.index(), c),
                Diagnostic::error(
                    "schedule/buffer-undersized",
                    format!(
                        "channel `{}` declares capacity {declared}, below the minimal safe \
                         bound {min_bound}",
                        graph.channel_label(channel)
                    ),
                )
                .with_help(format!(
                    "raise the declared bound to at least {min_bound} \
                     (produce + consume - gcd)"
                )),
            ));
        } else if declared < channel.produce + channel.consume
            && graph.stages()[channel.from.index()].resource
                != graph.stages()[channel.to.index()].resource
        {
            let overlap = channel.produce + channel.consume;
            keyed.push((
                (channel.from.index(), c),
                Diagnostic::warning(
                    "schedule/no-overlap",
                    format!(
                        "channel `{}` crosses resources but its capacity {declared} cannot \
                         hold one producer and one consumer firing in flight together",
                        graph.channel_label(channel)
                    ),
                )
                .with_help(format!(
                    "declare capacity >= {overlap} (produce + consume) to let the two \
                     resources overlap"
                )),
            ));
        }
    }

    // Deadlock freedom, only meaningful once the structure is sound.
    let structurally_sound = !keyed
        .iter()
        .any(|(_, d)| d.severity == wide_nn::diag::Severity::Error);
    if structurally_sound {
        if let Err(stall) = solve::simulate_steady_state(graph, &repetition) {
            keyed.push((
                (stage_count, graph.channels().len()),
                deadlock_diag(graph, &stall.tokens, &stall.remaining),
            ));
        }
    }

    // Critical path: resources serialize internally, overlap mutually.
    let resource_busy_s = solve::resource_busy_s(graph, &repetition);
    let critical_path_s = solve::critical_path_s(graph, &repetition);

    ScheduleReport {
        graph: graph.name().to_string(),
        diagnostics: finish(keyed),
        analysis: Some(ScheduleAnalysis {
            stage_names: graph.stages().iter().map(|s| s.name.clone()).collect(),
            repetition,
            min_capacities,
            resource_busy_s,
            critical_path_s,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::Resource;

    fn codes(report: &ScheduleReport) -> Vec<&str> {
        report.diagnostics.iter().map(|d| d.code.as_str()).collect()
    }

    /// The double-buffered invoke shape: link -> device -> link.
    fn overlapped_invoke() -> SdfGraph {
        let mut g = SdfGraph::new("overlapped-invoke").with_overhead_s(1e-3);
        let dma_in = g.add_stage("dma_in", Resource::LINK, 2e-3);
        let compute = g.add_stage("compute", Resource::DEVICE, 5e-3);
        let dma_out = g.add_stage("dma_out", Resource::LINK, 1e-3);
        g.add_channel(dma_in, compute, 1, 1, Some(2));
        g.add_channel(compute, dma_out, 1, 1, Some(2));
        g
    }

    #[test]
    fn balanced_unit_rate_chain_is_accepted() {
        let report = analyze(&overlapped_invoke());
        assert!(report.diagnostics.is_empty(), "{report}");
        let analysis = report.analysis.expect("analysis");
        assert_eq!(analysis.repetition, vec![1, 1, 1]);
        assert_eq!(analysis.min_capacities, vec![1, 1]);
        // Critical path: overhead + max(link busy 3e-3, device busy 5e-3).
        assert!((analysis.critical_path_s - 6e-3).abs() < 1e-15);
    }

    #[test]
    fn non_unit_rates_get_a_scaled_repetition_vector() {
        let mut g = SdfGraph::new("fan");
        let plan = g.add_stage("plan", Resource::Host, 1e-6);
        let member = g.add_stage("member", Resource::Host, 1e-3);
        let merge = g.add_stage("merge", Resource::Host, 5e-6);
        g.add_channel(plan, member, 4, 1, Some(4));
        g.add_channel(member, merge, 1, 4, Some(4));
        let report = analyze(&g);
        assert!(!report.has_errors(), "{report}");
        let analysis = report.analysis.expect("analysis");
        assert_eq!(analysis.repetition, vec![1, 4, 1]);
        // (4, 1): 4 + 1 - gcd(4,1) = 4.
        assert_eq!(analysis.min_capacities, vec![4, 4]);
    }

    #[test]
    fn inconsistent_rates_are_rejected_without_analysis() {
        let mut g = SdfGraph::new("bad-rates");
        let a = g.add_stage("a", Resource::Host, 1.0);
        let b = g.add_stage("b", Resource::Host, 1.0);
        g.add_channel(a, b, 2, 1, None);
        g.add_channel(a, b, 1, 1, None); // contradicts 2:1
        let report = analyze(&g);
        assert_eq!(codes(&report), vec!["schedule/rate-inconsistent"]);
        assert!(report.analysis.is_none());
        assert!(report.has_errors());
    }

    #[test]
    fn zero_rate_is_rejected() {
        let mut g = SdfGraph::new("zero-rate");
        let a = g.add_stage("a", Resource::Host, 1.0);
        let b = g.add_stage("b", Resource::Host, 1.0);
        g.add_channel(a, b, 0, 1, None);
        let report = analyze(&g);
        assert_eq!(codes(&report), vec!["schedule/rate-inconsistent"]);
    }

    #[test]
    fn undersized_buffer_is_rejected_with_computed_minimum() {
        let mut g = SdfGraph::new("undersized");
        let a = g.add_stage("a", Resource::DEVICE, 1.0);
        let b = g.add_stage("b", Resource::Host, 1.0);
        g.add_channel(a, b, 3, 2, Some(2));
        let report = analyze(&g);
        assert_eq!(codes(&report), vec!["schedule/buffer-undersized"]);
        // 3 + 2 - gcd(3, 2) = 4.
        assert!(
            report.diagnostics[0]
                .message
                .contains("minimal safe bound 4"),
            "{}",
            report.diagnostics[0].message
        );
        // The analysis still reports the minimum for the caller.
        assert_eq!(report.analysis.expect("analysis").min_capacities, vec![4]);
    }

    #[test]
    fn zero_capacity_channel_is_undersized() {
        let mut g = SdfGraph::new("rendezvous");
        let a = g.add_stage("a", Resource::DEVICE, 1.0);
        let b = g.add_stage("b", Resource::Host, 1.0);
        g.add_channel(a, b, 1, 1, Some(0));
        let report = analyze(&g);
        assert_eq!(codes(&report), vec!["schedule/buffer-undersized"]);
        assert!(report.diagnostics[0]
            .message
            .contains("minimal safe bound 1"));
    }

    #[test]
    fn zero_token_cycle_deadlocks() {
        let mut g = SdfGraph::new("cycle");
        let a = g.add_stage("a", Resource::Host, 1.0);
        let b = g.add_stage("b", Resource::Host, 1.0);
        g.add_channel(a, b, 1, 1, None);
        g.add_channel(b, a, 1, 1, None);
        let report = analyze(&g);
        assert_eq!(codes(&report), vec!["schedule/deadlock"]);
        assert!(report.diagnostics[0].message.contains("waits for"));
    }

    #[test]
    fn initial_tokens_break_the_cycle() {
        let mut g = SdfGraph::new("pipelined-cycle");
        let a = g.add_stage("a", Resource::Host, 1.0);
        let b = g.add_stage("b", Resource::Host, 1.0);
        g.add_channel(a, b, 1, 1, None);
        g.add_channel_with_delay(b, a, 1, 1, None, 1);
        let report = analyze(&g);
        assert!(!report.has_errors(), "{report}");
    }

    #[test]
    fn unfireable_self_loop_is_rejected() {
        let mut g = SdfGraph::new("self-loop");
        let a = g.add_stage("a", Resource::DEVICE, 1.0);
        g.add_channel(a, a, 1, 1, Some(1));
        let report = analyze(&g);
        assert!(codes(&report).contains(&"schedule/resource-self-cycle"));
    }

    #[test]
    fn seeded_self_loop_is_fine() {
        let mut g = SdfGraph::new("seeded-self-loop");
        let a = g.add_stage("a", Resource::DEVICE, 1.0);
        g.add_channel_with_delay(a, a, 1, 1, Some(1), 1);
        let report = analyze(&g);
        assert!(!report.has_errors(), "{report}");
    }

    #[test]
    fn shallow_cross_resource_channel_warns_about_overlap() {
        let mut g = SdfGraph::new("serialized");
        let a = g.add_stage("a", Resource::DEVICE, 1.0);
        let b = g.add_stage("b", Resource::Host, 1.0);
        g.add_channel(a, b, 1, 1, Some(1));
        let report = analyze(&g);
        assert_eq!(codes(&report), vec!["schedule/no-overlap"]);
        assert!(!report.has_errors(), "warnings only: {report}");
    }

    #[test]
    fn same_resource_shallow_channel_does_not_warn() {
        let mut g = SdfGraph::new("host-chain");
        let a = g.add_stage("a", Resource::Host, 1.0);
        let b = g.add_stage("b", Resource::Host, 1.0);
        g.add_channel(a, b, 1, 1, Some(1));
        let report = analyze(&g);
        assert!(report.diagnostics.is_empty(), "{report}");
    }

    #[test]
    fn capacity_induced_deadlock_is_detected() {
        // `a` exhausts its two firings, then `b` and `c` are jointly
        // stuck on their mutual zero-token cycle even though every
        // individual capacity meets its per-channel minimum.
        let mut g = SdfGraph::new("capacity-deadlock");
        let a = g.add_stage("a", Resource::Host, 1.0);
        let b = g.add_stage("b", Resource::Host, 1.0);
        let c = g.add_stage("c", Resource::Host, 1.0);
        g.add_channel(a, c, 1, 2, Some(2));
        g.add_channel(b, c, 1, 1, Some(1));
        g.add_channel(c, b, 1, 1, Some(1));
        let report = analyze(&g);
        assert!(codes(&report).contains(&"schedule/deadlock"), "{report}");
    }

    #[test]
    fn report_displays_verdict_and_critical_path() {
        let report = analyze(&overlapped_invoke());
        let text = format!("{report}");
        assert!(text.contains("overlapped-invoke"), "{text}");
        assert!(text.contains("critical path"), "{text}");
        let mut bad = SdfGraph::new("bad");
        let a = bad.add_stage("a", Resource::Host, 1.0);
        let b = bad.add_stage("b", Resource::Host, 1.0);
        bad.add_channel(a, b, 2, 1, None);
        bad.add_channel(a, b, 1, 1, None);
        assert!(format!("{}", analyze(&bad)).contains("REJECTED"));
    }

    #[test]
    fn two_device_schedule_reports_both_device_resources() {
        let mut g = SdfGraph::new("two-device");
        let enc = g.add_stage("encode", Resource::DEVICE, 2e-3);
        let score = g.add_stage("score", Resource::Device(1), 3e-3);
        g.add_channel(enc, score, 1, 1, Some(2));
        let report = analyze(&g);
        assert!(!report.has_errors(), "{report}");
        let text = format!("{report}");
        assert!(text.contains("busy device:"), "{text}");
        assert!(text.contains("busy device1:"), "{text}");
    }

    #[test]
    fn schedule_rule_table_covers_all_emitted_codes() {
        let names: Vec<&str> = crate::dataflow::SCHEDULE_RULES
            .iter()
            .map(|r| r.name)
            .collect();
        for code in [
            "rate-inconsistent",
            "buffer-undersized",
            "deadlock",
            "resource-self-cycle",
            "no-overlap",
        ] {
            assert!(names.contains(&code), "{code} missing from SCHEDULE_RULES");
        }
    }
}
