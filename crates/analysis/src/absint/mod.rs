//! Abstract-interpretation support for the lint engine.
//!
//! The interval analysis itself — the lattice, the per-layer transfer
//! functions and the [`wide_nn::RangeReport`] it produces — lives in
//! [`wide_nn::absint`], next to the quantized executor whose semantics
//! it overapproximates (`hd-analysis` depends on `wide-nn`, so the
//! value-range machinery cannot live here without a crate cycle). This
//! module re-exports those types so analysis consumers have one import
//! path, and hosts the lexical companion rule
//! [`no-unchecked-narrowing`](narrowing): the range verifier proves the
//! *model* cannot overflow, the narrowing rule proves the *kernels* do
//! not silently wrap when they shrink an accumulator anyway.

pub(crate) mod narrowing;

pub use wide_nn::absint::{analyze_ranges, Interval, RangeConfig, RangeReport, StageRange};

use crate::rules::RuleInfo;
use wide_nn::diag::Severity;

/// Metadata for every `range/*` diagnostic the interval analysis can
/// emit (see [`wide_nn::absint`]), mirroring
/// [`RULES`](crate::rules::RULES) so SARIF output can describe range
/// findings with the same fidelity as lint findings. Names are bare;
/// diagnostics carry the code `range/<name>`.
pub const RANGE_RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "accumulator-overflow",
        severity: Severity::Error,
        description: "a stage's worst-case accumulator range exceeds the int8 datapath's \
                      accumulator width",
    },
    RuleInfo {
        name: "output-saturation",
        severity: Severity::Warning,
        description: "too many output columns can saturate int8 requantization under the \
                      calibrated ranges",
    },
    RuleInfo {
        name: "dead-range",
        severity: Severity::Warning,
        description: "a stage's output is provably constant over the whole input range; its \
                      quantization range is dead",
    },
];
