//! Abstract-interpretation support for the lint engine.
//!
//! The interval analysis itself — the lattice, the per-layer transfer
//! functions and the [`wide_nn::RangeReport`] it produces — lives in
//! [`wide_nn::absint`], next to the quantized executor whose semantics
//! it overapproximates (`hd-analysis` depends on `wide-nn`, so the
//! value-range machinery cannot live here without a crate cycle). This
//! module re-exports those types so analysis consumers have one import
//! path, and hosts the lexical companion rule
//! [`no-unchecked-narrowing`](narrowing): the range verifier proves the
//! *model* cannot overflow, the narrowing rule proves the *kernels* do
//! not silently wrap when they shrink an accumulator anyway.

pub(crate) mod narrowing;

pub use wide_nn::absint::{analyze_ranges, Interval, RangeConfig, RangeReport, StageRange};
