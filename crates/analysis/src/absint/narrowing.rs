//! `no-unchecked-narrowing`: bare `as i8` / `as u8` / `as i32` casts in
//! hot-path kernels.
//!
//! A narrowing `as` cast silently truncates: `(300i32) as i8` is `44`,
//! not a clamp and not an error. In the int8 datapath that turns an
//! accumulator overflow into a plausible-looking wrong answer instead of
//! a diagnostic. The static range verifier ([`wide_nn::absint`]) proves
//! compiled models stay inside the i32 accumulator, but kernel code must
//! still narrow *somewhere* — and the sanctioned ways are the saturating
//! wrappers in `hd_quant::narrow`, an explicit `.clamp(..) as _`, or the
//! fallible `try_from`. Widening is never flagged as such, but `as i32`
//! is on the needle list because at a call site the lint cannot see the
//! operand type; lossless widenings should be written `i32::from(x)` /
//! `i64::from(x)`, which the compiler checks and the lint ignores.

use crate::lexer::MaskedSource;
use crate::rules::{at, occurrences};
use wide_nn::diag::Diagnostic;

/// Narrowing (or ambiguous-width) cast spellings to look for.
const NEEDLES: &[&str] = &["as i8", "as u8", "as i32"];

/// Substrings that, appearing earlier on the same line, mark the cast as
/// deliberately guarded: a clamp-then-cast, a saturating helper, or a
/// checked/fallible conversion feeding the cast.
const GUARDS: &[&str] = &[".clamp(", "saturating_", "try_from", "checked_"];

/// Runs the rule over one hot-path file.
pub(crate) fn no_unchecked_narrowing(path: &str, source: &MaskedSource, out: &mut Vec<Diagnostic>) {
    let code = source.code();
    let bytes = code.as_bytes();
    for needle in NEEDLES {
        for offset in occurrences(source, needle) {
            // `as` must be a standalone keyword and the target type a
            // complete token: reject `has i8` and `as i32x4`-style hits.
            if offset > 0 && is_ident_byte(bytes[offset - 1]) {
                continue;
            }
            let end = offset + needle.len();
            if bytes.get(end).copied().is_some_and(is_ident_byte) {
                continue;
            }
            let line_start = code[..offset].rfind('\n').map(|p| p + 1).unwrap_or(0);
            let before_on_line = &code[line_start..offset];
            if GUARDS.iter().any(|g| before_on_line.contains(g)) {
                continue;
            }
            let ty = needle.trim_start_matches("as ");
            out.push(
                at(
                    Diagnostic::error(
                        "lint/no-unchecked-narrowing",
                        format!("bare `{needle}` cast in a hot-path kernel"),
                    ),
                    path,
                    source,
                    offset,
                )
                .with_help(format!(
                    "`as {ty}` wraps silently on overflow; use hd_quant::narrow::saturate_*, \
                     clamp-then-cast, or `{ty}::try_from` — and `i32::from`/`i64::from` for \
                     lossless widening"
                )),
            );
        }
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use crate::lexer::MaskedSource;
    use crate::rules::lint_source;
    use wide_nn::diag::Diagnostic;

    const HOT: &str = "crates/quant/src/gemm.rs";

    fn narrowing_hits(path: &str, src: &str) -> Vec<Diagnostic> {
        lint_source(path, &MaskedSource::new(src))
            .into_iter()
            .filter(|d| d.code == "lint/no-unchecked-narrowing")
            .collect()
    }

    #[test]
    fn bare_narrowing_casts_flagged_in_hot_path() {
        let src = "fn f(x: i32) -> i8 { x as i8 }\nfn g(x: i64) -> i32 { x as i32 }\n";
        let hits = narrowing_hits(HOT, src);
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert!(hits[0].message.contains("as i8"));
        assert!(hits[1].message.contains("as i32"));
    }

    #[test]
    fn cold_path_files_not_flagged() {
        let src = "fn f(x: i32) -> i8 { x as i8 }\n";
        assert!(narrowing_hits("crates/core/src/lib.rs", src).is_empty());
    }

    #[test]
    fn clamped_and_checked_casts_are_sanctioned() {
        let src = concat!(
            "fn a(x: i32) -> i8 { x.clamp(-128, 127) as i8 }\n",
            "fn b(x: i64) -> i32 { x.clamp(i64::from(i32::MIN), i64::from(i32::MAX)) as i32 }\n",
            "fn c(x: u32) -> u8 { u8::try_from(x).unwrap_or(0) }\n",
        );
        assert!(narrowing_hits(HOT, src).is_empty());
    }

    #[test]
    fn identifier_boundaries_respected() {
        // `has i8` (identifier ending in `as`) and wider type names must
        // not match.
        let src = "fn f(has: bool) { let _ = has; }\nfn g(x: i64) -> i64 { x }\n";
        assert!(narrowing_hits(HOT, src).is_empty());
    }

    #[test]
    fn test_regions_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(x: i32) -> i8 { x as i8 }\n}\n";
        assert!(narrowing_hits(HOT, src).is_empty());
    }

    #[test]
    fn casts_in_comments_and_strings_ignored() {
        let src = "// rewrite x as i8 later\nfn f() -> &'static str { \"y as u8\" }\n";
        assert!(narrowing_hits(HOT, src).is_empty());
    }
}
