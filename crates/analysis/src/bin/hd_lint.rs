//! The `hd-lint` command-line driver.
//!
//! ```text
//! hd-lint [--root DIR] [--allowlist FILE] [--format text|json]
//!         [--deny-warnings] [FILES...]
//! ```
//!
//! With no `FILES`, lints the whole workspace (crates/, tests/,
//! examples/). Exit status: 0 clean, 1 findings fail the policy, 2 usage
//! or IO error.

use std::path::PathBuf;
use std::process::ExitCode;

use hd_analysis::{engine, json, Allowlist, LintReport};

struct Options {
    root: Option<PathBuf>,
    allowlist: Option<PathBuf>,
    json: bool,
    deny_warnings: bool,
    files: Vec<PathBuf>,
}

const USAGE: &str = "usage: hd-lint [--root DIR] [--allowlist FILE] [--format text|json] \
                     [--deny-warnings] [FILES...]";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        allowlist: None,
        json: false,
        deny_warnings: false,
        files: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = Some(it.next().ok_or("--root needs a directory")?.into());
            }
            "--allowlist" => {
                opts.allowlist = Some(it.next().ok_or("--allowlist needs a file")?.into());
            }
            "--format" => match it.next().map(String::as_str) {
                Some("text") => opts.json = false,
                Some("json") => opts.json = true,
                _ => return Err("--format must be text or json".to_owned()),
            },
            "--deny-warnings" => opts.deny_warnings = true,
            "--help" | "-h" => return Err(USAGE.to_owned()),
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag {flag}\n{USAGE}"));
            }
            file => opts.files.push(file.into()),
        }
    }
    Ok(opts)
}

fn run(opts: &Options) -> Result<LintReport, String> {
    let root = match &opts.root {
        Some(dir) => dir.clone(),
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            engine::find_workspace_root(&cwd)
                .ok_or("no workspace root found above the current directory; pass --root")?
        }
    };

    let allowlist_path = opts
        .allowlist
        .clone()
        .unwrap_or_else(|| root.join("lint.toml"));
    let allowlist = match std::fs::read_to_string(&allowlist_path) {
        Ok(text) => {
            Allowlist::parse(&text).map_err(|e| format!("{}: {e}", allowlist_path.display()))?
        }
        Err(_) if opts.allowlist.is_none() => Allowlist::default(),
        Err(e) => return Err(format!("reading {}: {e}", allowlist_path.display())),
    };

    if opts.files.is_empty() {
        return engine::lint_workspace(&root, &allowlist);
    }

    let mut report = LintReport::default();
    for file in &opts.files {
        let source = std::fs::read_to_string(file)
            .map_err(|e| format!("reading {}: {e}", file.display()))?;
        let rel = file
            .strip_prefix(&root)
            .unwrap_or(file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let file_report = engine::lint_text(&rel, &source, &allowlist);
        report.diagnostics.extend(file_report.diagnostics);
        report.suppressed.extend(file_report.suppressed);
        report.files_scanned += 1;
    }
    Ok(report)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(report) => {
            if opts.json {
                println!("{}", json::encode(&report.diagnostics));
            } else {
                print!("{}", report.to_text());
            }
            if report.fails(opts.deny_warnings) {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(message) => {
            eprintln!("hd-lint: {message}");
            ExitCode::from(2)
        }
    }
}
