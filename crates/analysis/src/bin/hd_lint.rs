//! The `hd-lint` command-line driver.
//!
//! ```text
//! hd-lint [--root DIR] [--allowlist FILE] [--format text|json|sarif]
//!         [--sarif] [--deny-warnings] [--list-rules] [FILES...]
//! ```
//!
//! With no `FILES`, lints the whole workspace (crates/, tests/,
//! examples/). `--list-rules` prints the rule table and exits. Exit
//! status: 0 clean, 1 findings fail the policy, 2 usage or IO error.

use std::path::PathBuf;
use std::process::ExitCode;

use hd_analysis::{engine, json, sarif, Allowlist, LintReport};

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

struct Options {
    root: Option<PathBuf>,
    allowlist: Option<PathBuf>,
    format: Format,
    deny_warnings: bool,
    list_rules: bool,
    files: Vec<PathBuf>,
}

const USAGE: &str = "usage: hd-lint [--root DIR] [--allowlist FILE] [--format text|json|sarif] \
                     [--sarif] [--deny-warnings] [--list-rules] [FILES...]";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        allowlist: None,
        format: Format::Text,
        deny_warnings: false,
        list_rules: false,
        files: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = Some(it.next().ok_or("--root needs a directory")?.into());
            }
            "--allowlist" => {
                opts.allowlist = Some(it.next().ok_or("--allowlist needs a file")?.into());
            }
            "--format" => match it.next().map(String::as_str) {
                Some("text") => opts.format = Format::Text,
                Some("json") => opts.format = Format::Json,
                Some("sarif") => opts.format = Format::Sarif,
                _ => return Err("--format must be text, json or sarif".to_owned()),
            },
            "--sarif" => opts.format = Format::Sarif,
            "--deny-warnings" => opts.deny_warnings = true,
            "--list-rules" => opts.list_rules = true,
            "--help" | "-h" => return Err(USAGE.to_owned()),
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag {flag}\n{USAGE}"));
            }
            file => opts.files.push(file.into()),
        }
    }
    Ok(opts)
}

/// Renders the rule table for `--list-rules`: one `id  severity
/// description` line per registered rule — the `lint/*` source rules
/// plus the `range/*` and `schedule/*` analysis rules, in the same
/// order the SARIF driver catalogs them. The README rules table is
/// generated from this output.
fn rules_table() -> String {
    let rules = sarif::registered_rules();
    let id_width = rules.iter().map(|(id, _)| id.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (id, rule) in &rules {
        out.push_str(&format!(
            "{id:<id_width$}  {:<7}  {}\n",
            rule.severity.name(),
            rule.description
        ));
    }
    out
}

fn run(opts: &Options) -> Result<LintReport, String> {
    let root = match &opts.root {
        Some(dir) => dir.clone(),
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            engine::find_workspace_root(&cwd)
                .ok_or("no workspace root found above the current directory; pass --root")?
        }
    };

    let allowlist_path = opts
        .allowlist
        .clone()
        .unwrap_or_else(|| root.join("lint.toml"));
    let allowlist = match std::fs::read_to_string(&allowlist_path) {
        Ok(text) => {
            Allowlist::parse(&text).map_err(|e| format!("{}: {e}", allowlist_path.display()))?
        }
        Err(_) if opts.allowlist.is_none() => Allowlist::default(),
        Err(e) => return Err(format!("reading {}: {e}", allowlist_path.display())),
    };

    if opts.files.is_empty() {
        return engine::lint_workspace(&root, &allowlist);
    }

    let mut report = LintReport::default();
    for file in &opts.files {
        let source = std::fs::read_to_string(file)
            .map_err(|e| format!("reading {}: {e}", file.display()))?;
        let rel = file
            .strip_prefix(&root)
            .unwrap_or(file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let file_report = engine::lint_text(&rel, &source, &allowlist);
        report.diagnostics.extend(file_report.diagnostics);
        report.suppressed.extend(file_report.suppressed);
        report.files_scanned += 1;
    }
    Ok(report)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    if opts.list_rules {
        print!("{}", rules_table());
        return ExitCode::SUCCESS;
    }
    match run(&opts) {
        Ok(report) => {
            match opts.format {
                Format::Json => println!("{}", json::encode(&report.diagnostics)),
                Format::Sarif => print!("{}", sarif::encode(&report.diagnostics)),
                Format::Text => print!("{}", report.to_text()),
            }
            if report.fails(opts.deny_warnings) {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(message) => {
            eprintln!("hd-lint: {message}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_analysis::RULES;

    fn parse(args: &[&str]) -> Result<Options, String> {
        parse_args(&args.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>())
    }

    #[test]
    fn sarif_flag_and_format_agree() {
        assert!(parse(&["--sarif"]).unwrap().format == Format::Sarif);
        assert!(parse(&["--format", "sarif"]).unwrap().format == Format::Sarif);
        assert!(parse(&["--format", "json"]).unwrap().format == Format::Json);
        assert!(parse(&[]).unwrap().format == Format::Text);
        assert!(parse(&["--format", "yaml"]).is_err());
    }

    #[test]
    fn list_rules_flag_parses() {
        assert!(parse(&["--list-rules"]).unwrap().list_rules);
    }

    #[test]
    fn rules_table_has_one_line_per_registered_rule() {
        let table = rules_table();
        let registered = sarif::registered_rules();
        assert_eq!(table.lines().count(), registered.len());
        assert!(registered.len() > RULES.len(), "analysis rules missing");
        for (id, rule) in &registered {
            let line = table
                .lines()
                .find(|l| l.starts_with(id.as_str()))
                .unwrap_or_else(|| panic!("{id} not listed"));
            assert!(line.contains(rule.severity.name()));
            assert!(line.contains(rule.description));
        }
    }

    #[test]
    fn rules_table_catalogs_the_interleaving_rules() {
        let table = rules_table();
        for id in [
            "schedule/interleaving-deadlock",
            "schedule/interleaving-overflow",
            "schedule/interleaving-lost-token",
            "schedule/interleaving-livelock",
        ] {
            assert!(table.contains(id), "{id} missing:\n{table}");
        }
    }
}
