//! Workspace lint engine for the HyperEdge repository.
//!
//! `hd-analysis` is the static-analysis half of the tier-1 quality gate.
//! It scans every first-party crate (a masked token view of the source —
//! see [`lexer`]), applies the rules in [`rules`], filters findings
//! through the root `lint.toml` allowlist ([`allowlist`]) and reports
//! [`Diagnostic`] values shared with the `wide-nn` model-graph verifier.
//! The `hd-lint` binary drives it from the command line:
//!
//! ```text
//! cargo run -p hd-analysis --bin hd-lint -- --format json
//! ```
//!
//! Rules (see [`rules`] for definitions):
//!
//! * `no-panic-in-hot-path` (error) — no unwrap/expect/panic!/indexing in
//!   the latency-critical kernels.
//! * `no-float-eq` (error) — no exact `==`/`!=` against float literals
//!   outside tests.
//! * `fallible-returns-result` (warning) — panicking pub fns must return
//!   `Result` or document `# Panics`.
//! * `missing-must-use` (warning) — `pub fn … -> Self` builders need
//!   `#[must_use]`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allowlist;
pub mod engine;
pub mod json;
pub mod lexer;
pub mod rules;

pub use allowlist::{AllowEntry, Allowlist, AllowlistError};
pub use engine::{discover_files, find_workspace_root, lint_text, lint_workspace, LintReport};
pub use wide_nn::diag::{Diagnostic, Severity, Site};
