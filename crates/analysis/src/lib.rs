//! Workspace lint engine for the HyperEdge repository.
//!
//! `hd-analysis` is the static-analysis half of the tier-1 quality gate.
//! It scans every first-party crate (a masked token view of the source —
//! see [`lexer`]), applies the rules in [`rules`], filters findings
//! through the root `lint.toml` allowlist ([`allowlist`]) and reports
//! [`Diagnostic`] values shared with the `wide-nn` model-graph verifier.
//! The `hd-lint` binary drives it from the command line:
//!
//! ```text
//! cargo run -p hd-analysis --bin hd-lint -- --format json
//! ```
//!
//! Rules (see [`rules`] for definitions):
//!
//! * `no-panic-in-hot-path` (error) — no unwrap/expect/panic!/indexing in
//!   the latency-critical kernels.
//! * `no-float-eq` (error) — no exact `==`/`!=` against float literals
//!   outside tests.
//! * `no-unchecked-narrowing` (error) — no bare `as i8`/`as u8`/`as i32`
//!   casts in hot-path kernels without a saturating/checked wrapper.
//! * `fallible-returns-result` (warning) — panicking pub fns must return
//!   `Result` or document `# Panics`.
//! * `missing-must-use` (warning) — `pub fn … -> Self` builders need
//!   `#[must_use]`.
//! * `no-unseeded-rng` (error) — every random stream must flow from an
//!   explicit seed.
//! * `no-adhoc-concurrency` (error) — no bare `thread::spawn`/
//!   `thread::scope` or unbounded `mpsc::channel()` outside the declared
//!   schedule layer.
//!
//! The [`absint`] module re-exports the value-range abstract
//! interpretation from `wide_nn::absint` and hosts the narrowing rule;
//! [`dataflow`] holds the SDF stage-graph IR and the static schedule
//! analyzer behind `hyperedge verify --schedule`; [`sarif`] renders
//! reports for GitHub code scanning with rule metadata for every
//! registered rule (`lint/*`, `range/*`, and `schedule/*`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod absint;
pub mod allowlist;
pub mod dataflow;
pub mod engine;
pub mod json;
pub mod lexer;
pub mod rules;
pub mod sarif;

pub use allowlist::{AllowEntry, Allowlist, AllowlistError};
pub use engine::{discover_files, find_workspace_root, lint_text, lint_workspace, LintReport};
pub use rules::{RuleInfo, RULES, RULE_NAMES};
pub use wide_nn::diag::{Diagnostic, Severity, Site};
