//! The per-rule lint allowlist (`lint.toml` at the repository root).
//!
//! Format — a TOML subset of repeated `[[allow]]` tables with three
//! mandatory string keys:
//!
//! ```toml
//! [[allow]]
//! rule = "no-float-eq"
//! path = "crates/tensor/src/gemm.rs"
//! reason = "exact-zero sparsity test in the inner kernel"
//! ```
//!
//! `rule` must be one of the known rule names, `path` matches any file
//! whose workspace-relative path ends with it, and `reason` is mandatory:
//! an allowlist entry without a human justification is itself an error.

use crate::rules::RULE_NAMES;
use wide_nn::diag::Diagnostic;

/// One `[[allow]]` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule name without the `lint/` prefix.
    pub rule: String,
    /// Workspace-relative path suffix the entry applies to.
    pub path: String,
    /// Why the violation is acceptable.
    pub reason: String,
}

/// A parsed allowlist.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
}

/// A parse/validation failure with its `lint.toml` line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowlistError {
    /// One-based line the problem was detected on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for AllowlistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for AllowlistError {}

impl Allowlist {
    /// Parses the `lint.toml` text.
    ///
    /// # Errors
    ///
    /// Returns an [`AllowlistError`] on malformed lines, unknown keys or
    /// rules, and entries missing `rule`, `path` or `reason`.
    pub fn parse(text: &str) -> Result<Self, AllowlistError> {
        let mut entries = Vec::new();
        let mut current: Option<(usize, AllowEntry)> = None;

        let finish = |current: &mut Option<(usize, AllowEntry)>,
                      entries: &mut Vec<AllowEntry>|
         -> Result<(), AllowlistError> {
            if let Some((start, entry)) = current.take() {
                for (field, value) in [
                    ("rule", &entry.rule),
                    ("path", &entry.path),
                    ("reason", &entry.reason),
                ] {
                    if value.is_empty() {
                        return Err(AllowlistError {
                            line: start,
                            message: format!("[[allow]] entry is missing `{field}`"),
                        });
                    }
                }
                if !RULE_NAMES.contains(&entry.rule.as_str()) {
                    return Err(AllowlistError {
                        line: start,
                        message: format!(
                            "unknown rule {:?}; known rules: {}",
                            entry.rule,
                            RULE_NAMES.join(", ")
                        ),
                    });
                }
                entries.push(entry);
            }
            Ok(())
        };

        for (idx, raw_line) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw_line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                finish(&mut current, &mut entries)?;
                current = Some((
                    lineno,
                    AllowEntry {
                        rule: String::new(),
                        path: String::new(),
                        reason: String::new(),
                    },
                ));
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(AllowlistError {
                    line: lineno,
                    message: format!("expected `key = \"value\"` or `[[allow]]`, got {line:?}"),
                });
            };
            let Some((_, entry)) = current.as_mut() else {
                return Err(AllowlistError {
                    line: lineno,
                    message: "key outside an [[allow]] table".to_owned(),
                });
            };
            let value = value.trim();
            let unquoted = value
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or_else(|| AllowlistError {
                    line: lineno,
                    message: format!("value must be a double-quoted string, got {value:?}"),
                })?;
            match key.trim() {
                "rule" => entry.rule = unquoted.to_owned(),
                "path" => entry.path = unquoted.to_owned(),
                "reason" => entry.reason = unquoted.to_owned(),
                other => {
                    return Err(AllowlistError {
                        line: lineno,
                        message: format!("unknown key {other:?}; expected rule, path or reason"),
                    });
                }
            }
        }
        finish(&mut current, &mut entries)?;
        Ok(Allowlist { entries })
    }

    /// The parsed entries.
    pub fn entries(&self) -> &[AllowEntry] {
        &self.entries
    }

    /// Whether `diag` (a `lint/<rule>` finding at a source site) is
    /// suppressed by some entry.
    pub fn suppresses(&self, diag: &Diagnostic) -> bool {
        self.entry_for(diag).is_some()
    }

    /// The first entry suppressing `diag`, if any.
    pub fn entry_for(&self, diag: &Diagnostic) -> Option<&AllowEntry> {
        let wide_nn::Site::Source { file, .. } = &diag.site else {
            return None;
        };
        self.entries.iter().find(|e| {
            diag.code == format!("lint/{}", e.rule)
                && (file == &e.path || file.ends_with(&format!("/{}", e.path)))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
# exact-zero checks are intentional in the sparse kernels
[[allow]]
rule = "no-float-eq"
path = "crates/tensor/src/gemm.rs"
reason = "exact-zero sparsity test"

[[allow]]
rule = "no-panic-in-hot-path"
path = "crates/tensor/src/gemm.rs"
reason = "bounds-checked block windows"
"#;

    #[test]
    fn parses_entries() {
        let list = Allowlist::parse(GOOD).unwrap();
        assert_eq!(list.entries().len(), 2);
        assert_eq!(list.entries()[0].rule, "no-float-eq");
    }

    #[test]
    fn missing_reason_rejected() {
        let err =
            Allowlist::parse("[[allow]]\nrule = \"no-float-eq\"\npath = \"x.rs\"\n").unwrap_err();
        assert!(err.message.contains("reason"), "{err}");
        assert_eq!(err.line, 1);
    }

    #[test]
    fn unknown_rule_rejected() {
        let err = Allowlist::parse(
            "[[allow]]\nrule = \"no-such-rule\"\npath = \"x.rs\"\nreason = \"r\"\n",
        )
        .unwrap_err();
        assert!(err.message.contains("unknown rule"), "{err}");
    }

    #[test]
    fn unknown_key_rejected() {
        let err = Allowlist::parse("[[allow]]\nfile = \"x.rs\"\n").unwrap_err();
        assert!(err.message.contains("unknown key"), "{err}");
        assert_eq!(err.line, 2);
    }

    #[test]
    fn unquoted_value_rejected() {
        let err = Allowlist::parse("[[allow]]\nrule = no-float-eq\n").unwrap_err();
        assert!(err.message.contains("double-quoted"), "{err}");
    }

    #[test]
    fn suppression_matches_rule_and_path_suffix() {
        let list = Allowlist::parse(GOOD).unwrap();
        let hit = Diagnostic::error("lint/no-float-eq", "x == 0.0").at_source(
            "crates/tensor/src/gemm.rs",
            3,
            4,
        );
        assert!(list.suppresses(&hit));
        let wrong_rule = Diagnostic::error("lint/missing-must-use", "m").at_source(
            "crates/tensor/src/gemm.rs",
            3,
            4,
        );
        assert!(!list.suppresses(&wrong_rule));
        let wrong_file = Diagnostic::error("lint/no-float-eq", "x == 0.0").at_source(
            "crates/nn/src/lib.rs",
            1,
            1,
        );
        assert!(!list.suppresses(&wrong_file));
        let global = Diagnostic::error("lint/no-float-eq", "g");
        assert!(!list.suppresses(&global));
    }

    #[test]
    fn empty_text_is_empty_allowlist() {
        assert!(Allowlist::parse("").unwrap().entries().is_empty());
    }
}
