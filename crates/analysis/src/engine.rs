//! Workspace driver: file discovery, rule execution, allowlist filtering
//! and report formatting.

use std::path::{Path, PathBuf};

use crate::allowlist::Allowlist;
use crate::lexer::MaskedSource;
use crate::rules::lint_source;
use wide_nn::diag::{Diagnostic, Severity};

/// Directories scanned relative to the workspace root. The `compat/`
/// shims are vendored stand-ins for external crates and are exempt, like
/// any other third-party dependency would be.
const SCAN_DIRS: &[&str] = &["crates", "tests", "examples"];

/// A finished lint run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintReport {
    /// Findings that survived the allowlist, in path order.
    pub diagnostics: Vec<Diagnostic>,
    /// Findings suppressed by the allowlist (kept for `--show-allowed`).
    pub suppressed: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Count of findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Whether the run should fail the build.
    pub fn fails(&self, deny_warnings: bool) -> bool {
        self.count(Severity::Error) > 0 || (deny_warnings && self.count(Severity::Warning) > 0)
    }

    /// Human-readable multi-line report with a trailing summary.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} files scanned: {} error(s), {} warning(s), {} note(s), {} allowlisted\n",
            self.files_scanned,
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Note),
            self.suppressed.len(),
        ));
        out
    }
}

/// Lints one in-memory file (used by the CLI for explicit paths and by
/// tests for inline fixtures). `rel_path` selects hot-path handling.
pub fn lint_text(rel_path: &str, source: &str, allowlist: &Allowlist) -> LintReport {
    let masked = MaskedSource::new(source);
    let mut report = LintReport {
        files_scanned: 1,
        ..LintReport::default()
    };
    for diag in lint_source(rel_path, &masked) {
        if allowlist.suppresses(&diag) {
            report.suppressed.push(diag);
        } else {
            report.diagnostics.push(diag);
        }
    }
    report
}

/// Recursively collects `.rs` files under the standard scan dirs.
///
/// # Errors
///
/// Returns an IO error description if a directory walk fails.
pub fn discover_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    for dir in SCAN_DIRS {
        let base = root.join(dir);
        if base.is_dir() {
            walk(&base, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(&path, files)?;
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Lints every workspace source file under `root`.
///
/// # Errors
///
/// Returns an IO error description if discovery or reading fails.
pub fn lint_workspace(root: &Path, allowlist: &Allowlist) -> Result<LintReport, String> {
    let mut report = LintReport::default();
    for path in discover_files(root)? {
        let source = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let file_report = lint_text(&rel, &source, allowlist);
        report.diagnostics.extend(file_report.diagnostics);
        report.suppressed.extend(file_report.suppressed);
        report.files_scanned += 1;
    }
    Ok(report)
}

/// Locates the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_text_applies_allowlist() {
        let allow = Allowlist::parse(
            "[[allow]]\nrule = \"no-float-eq\"\npath = \"crates/x/src/lib.rs\"\nreason = \"exact zero intended\"\n",
        )
        .unwrap();
        let src = "fn f(x: f32) -> bool { x == 0.0 }\n";
        let with = lint_text("crates/x/src/lib.rs", src, &allow);
        assert!(with.diagnostics.is_empty(), "{:?}", with.diagnostics);
        assert_eq!(with.suppressed.len(), 1);
        let without = lint_text("crates/x/src/lib.rs", src, &Allowlist::default());
        assert_eq!(without.count(Severity::Error), 1);
        assert!(without.fails(false));
    }

    #[test]
    fn deny_warnings_escalates() {
        let src = "impl B { pub fn with_x(self) -> Self { self } }\n";
        let report = lint_text("crates/x/src/lib.rs", src, &Allowlist::default());
        assert_eq!(report.count(Severity::Warning), 1);
        assert!(!report.fails(false));
        assert!(report.fails(true));
    }

    #[test]
    fn text_report_has_summary() {
        let report = lint_text(
            "crates/x/src/lib.rs",
            "fn f(x: f32) -> bool { x == 0.0 }\n",
            &Allowlist::default(),
        );
        let text = report.to_text();
        assert!(text.contains("lint/no-float-eq"), "{text}");
        assert!(text.contains("1 error(s)"), "{text}");
    }

    #[test]
    fn workspace_root_detection_finds_this_repo() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("Cargo.toml").exists());
        assert!(root.join("crates/analysis").is_dir());
    }

    #[test]
    fn discovery_finds_this_file_but_not_compat() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        let files = discover_files(&root).unwrap();
        assert!(files
            .iter()
            .any(|p| p.ends_with("crates/analysis/src/engine.rs")));
        assert!(!files
            .iter()
            .any(|p| p.to_string_lossy().contains("compat/")));
    }
}
