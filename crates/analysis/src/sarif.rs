//! SARIF 2.1.0 output for `hd-lint`.
//!
//! GitHub code scanning ingests findings as SARIF (Static Analysis
//! Results Interchange Format). This module renders a lint report as a
//! minimal but schema-valid SARIF log: one run, the `hd-lint` driver
//! with its [`RULES`](crate::rules::RULES) table, and one result per
//! [`Diagnostic`]. There is no serde in this build, so the encoder is
//! hand-rolled over the same string-escaping core as `--format json`,
//! and the validity tests re-parse the output with the strict JSON
//! parser in [`json`](crate::json).
//!
//! Source sites become `physicalLocation`s with a repository-relative
//! URI under the `%SRCROOT%` base, which is what the `upload-sarif`
//! action expects; layer- and model-level diagnostics (which have no
//! file) are emitted without a location, which SARIF permits.

use crate::json::escape_into;
use crate::rules::RULES;
use wide_nn::diag::{Diagnostic, Severity, Site};

/// SARIF `level` for a diagnostic severity.
fn level(severity: Severity) -> &'static str {
    match severity {
        Severity::Error => "error",
        Severity::Warning => "warning",
        Severity::Note => "note",
    }
}

fn push_kv(out: &mut String, key: &str, value: &str) {
    escape_into(out, key);
    out.push_str(": ");
    escape_into(out, value);
}

/// Encodes diagnostics as a SARIF 2.1.0 log.
#[must_use]
pub fn encode(diags: &[Diagnostic]) -> String {
    let mut out = String::with_capacity(2048 + diags.len() * 256);
    out.push_str("{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"hd-lint\",\n");
    out.push_str("          \"informationUri\": \"https://github.com/hyperedge/hyperedge\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, rule) in RULES.iter().enumerate() {
        out.push_str("            {");
        push_kv(&mut out, "id", &format!("lint/{}", rule.name));
        out.push_str(", ");
        push_kv(&mut out, "name", rule.name);
        out.push_str(", \"shortDescription\": {");
        push_kv(&mut out, "text", rule.description);
        out.push_str("}, \"defaultConfiguration\": {");
        push_kv(&mut out, "level", level(rule.severity));
        out.push_str("}}");
        if i + 1 < RULES.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("          ]\n        }\n      },\n      \"results\": [\n");
    for (i, d) in diags.iter().enumerate() {
        out.push_str("        {");
        push_kv(&mut out, "ruleId", &d.code);
        if let Some(index) = RULES
            .iter()
            .position(|r| format!("lint/{}", r.name) == d.code)
        {
            out.push_str(&format!(", \"ruleIndex\": {index}"));
        }
        out.push_str(", ");
        push_kv(&mut out, "level", level(d.severity));
        out.push_str(", \"message\": {");
        let text = match &d.help {
            Some(help) => format!("{}\nhelp: {help}", d.message),
            None => d.message.clone(),
        };
        push_kv(&mut out, "text", &text);
        out.push('}');
        if let Site::Source { file, line, column } = &d.site {
            out.push_str(", \"locations\": [{\"physicalLocation\": {\"artifactLocation\": {");
            push_kv(&mut out, "uri", file);
            out.push_str(", \"uriBaseId\": \"%SRCROOT%\"}, \"region\": {");
            out.push_str(&format!(
                "\"startLine\": {}, \"startColumn\": {}",
                line.max(&1),
                column.max(&1)
            ));
            out.push_str("}}}]");
        }
        out.push('}');
        if i + 1 < diags.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse_value, Value};

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic::error("lint/no-float-eq", "x == 0.5")
                .at_source("crates/a/src/lib.rs", 3, 9)
                .with_help("compare against a tolerance"),
            Diagnostic::warning("lint/missing-must-use", "builder").at_source(
                "crates/b/src/lib.rs",
                7,
                5,
            ),
            Diagnostic::error("range/accumulator-overflow", "acc exceeds i32")
                .at_layer(0, "fully-connected"),
        ]
    }

    fn run(log: &Value) -> &Value {
        &log.get("runs").unwrap().as_arr().unwrap()[0]
    }

    #[test]
    fn output_is_valid_json_with_sarif_envelope() {
        let log = parse_value(&encode(&sample())).expect("sarif parses");
        assert_eq!(log.get("version").unwrap().as_str(), Some("2.1.0"));
        assert!(log
            .get("$schema")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("sarif-2.1.0"));
        assert_eq!(log.get("runs").unwrap().as_arr().unwrap().len(), 1);
    }

    #[test]
    fn driver_lists_every_rule() {
        let log = parse_value(&encode(&[])).unwrap();
        let driver = run(&log).get("tool").unwrap().get("driver").unwrap();
        assert_eq!(driver.get("name").unwrap().as_str(), Some("hd-lint"));
        let rules = driver.get("rules").unwrap().as_arr().unwrap();
        assert_eq!(rules.len(), RULES.len());
        for (rule, meta) in rules.iter().zip(RULES) {
            assert_eq!(
                rule.get("id").unwrap().as_str().unwrap(),
                format!("lint/{}", meta.name)
            );
            assert_eq!(
                rule.get("defaultConfiguration")
                    .unwrap()
                    .get("level")
                    .unwrap()
                    .as_str()
                    .unwrap(),
                level(meta.severity)
            );
        }
    }

    #[test]
    fn source_results_carry_physical_locations() {
        let log = parse_value(&encode(&sample())).unwrap();
        let results = run(&log).get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 3);
        let first = &results[0];
        assert_eq!(
            first.get("ruleId").unwrap().as_str(),
            Some("lint/no-float-eq")
        );
        assert_eq!(first.get("ruleIndex").unwrap().as_usize(), Some(1));
        assert_eq!(first.get("level").unwrap().as_str(), Some("error"));
        assert!(first
            .get("message")
            .unwrap()
            .get("text")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("help: compare"));
        let region = first.get("locations").unwrap().as_arr().unwrap()[0]
            .get("physicalLocation")
            .unwrap();
        assert_eq!(
            region
                .get("artifactLocation")
                .unwrap()
                .get("uri")
                .unwrap()
                .as_str(),
            Some("crates/a/src/lib.rs")
        );
        assert_eq!(
            region
                .get("region")
                .unwrap()
                .get("startLine")
                .unwrap()
                .as_usize(),
            Some(3)
        );
    }

    #[test]
    fn non_source_results_omit_locations_and_rule_index() {
        let log = parse_value(&encode(&sample())).unwrap();
        let results = run(&log).get("results").unwrap().as_arr().unwrap();
        let overflow = &results[2];
        assert_eq!(
            overflow.get("ruleId").unwrap().as_str(),
            Some("range/accumulator-overflow")
        );
        assert!(overflow.get("locations").is_none());
        assert!(overflow.get("ruleIndex").is_none());
    }

    #[test]
    fn empty_report_still_valid() {
        let log = parse_value(&encode(&[])).unwrap();
        assert_eq!(run(&log).get("results").unwrap().as_arr().unwrap().len(), 0);
    }

    #[test]
    fn messages_with_quotes_and_newlines_escape_cleanly() {
        let diags = vec![Diagnostic::error("lint/x", "say \"hi\"\nline2")];
        let log = parse_value(&encode(&diags)).expect("escaped output parses");
        let results = run(&log).get("results").unwrap().as_arr().unwrap();
        assert_eq!(
            results[0]
                .get("message")
                .unwrap()
                .get("text")
                .unwrap()
                .as_str(),
            Some("say \"hi\"\nline2")
        );
    }
}
