//! SARIF 2.1.0 output for the static checks.
//!
//! GitHub code scanning ingests findings as SARIF (Static Analysis
//! Results Interchange Format). This module renders a report as a
//! minimal but schema-valid SARIF log: one run, a driver carrying the
//! metadata of **every registered rule** — the lint rules
//! ([`RULES`](crate::rules::RULES)), the value-range rules
//! ([`RANGE_RULES`](crate::absint::RANGE_RULES)), and the schedule
//! rules ([`SCHEDULE_RULES`](crate::dataflow::SCHEDULE_RULES)) — and
//! one result per [`Diagnostic`]. Emitting the full rules table even
//! when a rule has no findings means a clean run still documents what
//! was checked, and every result's `ruleId` resolves to driver
//! metadata via `ruleIndex` regardless of which analysis produced it.
//! There is no serde in this build, so the encoder is hand-rolled over
//! the same string-escaping core as `--format json`, and the validity
//! tests re-parse the output with the strict JSON parser in
//! [`json`](crate::json).
//!
//! Source sites become `physicalLocation`s with a repository-relative
//! URI under the `%SRCROOT%` base, which is what the `upload-sarif`
//! action expects; layer- and model-level diagnostics (which have no
//! file) are emitted without a location, which SARIF permits.

use crate::json::escape_into;
use crate::rules::RuleInfo;
use wide_nn::diag::{Diagnostic, Severity, Site};

/// SARIF `level` for a diagnostic severity.
fn level(severity: Severity) -> &'static str {
    match severity {
        Severity::Error => "error",
        Severity::Warning => "warning",
        Severity::Note => "note",
    }
}

fn push_kv(out: &mut String, key: &str, value: &str) {
    escape_into(out, key);
    out.push_str(": ");
    escape_into(out, value);
}

/// Every registered rule across the analyses, as `(full id, metadata)`
/// pairs in a stable order: `lint/*`, then `range/*`, then
/// `schedule/*`. Diagnostic codes are namespaced the same way, so a
/// code equals its rule's full id.
#[must_use]
pub fn registered_rules() -> Vec<(String, &'static RuleInfo)> {
    let namespaces: [(&str, &[RuleInfo]); 3] = [
        ("lint", crate::rules::RULES),
        ("range", crate::absint::RANGE_RULES),
        ("schedule", crate::dataflow::SCHEDULE_RULES),
    ];
    namespaces
        .iter()
        .flat_map(|(prefix, rules)| {
            rules
                .iter()
                .map(move |rule| (format!("{prefix}/{}", rule.name), rule))
        })
        .collect()
}

/// Encodes diagnostics as a SARIF 2.1.0 log under the `hd-lint` driver.
#[must_use]
pub fn encode(diags: &[Diagnostic]) -> String {
    encode_as("hd-lint", diags)
}

/// Encodes diagnostics as a SARIF 2.1.0 log under the named driver
/// (e.g. `hyperedge-verify` for `hyperedge verify --schedule`).
#[must_use]
pub fn encode_as(driver: &str, diags: &[Diagnostic]) -> String {
    encode_with_properties(driver, diags, None)
}

/// [`encode_as`] with an optional run-level `properties` bag:
/// `properties` must be a pre-rendered JSON object (SARIF allows
/// arbitrary property bags on a run). `hyperedge verify --schedule`
/// uses it to attach each schedule's solved repetition vector and
/// computed channel bounds alongside the pass/fail diagnostics.
#[must_use]
pub fn encode_with_properties(
    driver: &str,
    diags: &[Diagnostic],
    properties: Option<&str>,
) -> String {
    let rules = registered_rules();
    let mut out = String::with_capacity(2048 + diags.len() * 256);
    out.push_str("{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          ");
    push_kv(&mut out, "name", driver);
    out.push_str(",\n");
    out.push_str("          \"informationUri\": \"https://github.com/hyperedge/hyperedge\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, (id, rule)) in rules.iter().enumerate() {
        out.push_str("            {");
        push_kv(&mut out, "id", id);
        out.push_str(", ");
        push_kv(&mut out, "name", rule.name);
        out.push_str(", \"shortDescription\": {");
        push_kv(&mut out, "text", rule.description);
        out.push_str("}, \"defaultConfiguration\": {");
        push_kv(&mut out, "level", level(rule.severity));
        out.push_str("}}");
        if i + 1 < rules.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("          ]\n        }\n      },\n      \"results\": [\n");
    for (i, d) in diags.iter().enumerate() {
        out.push_str("        {");
        push_kv(&mut out, "ruleId", &d.code);
        if let Some(index) = rules.iter().position(|(id, _)| *id == d.code) {
            out.push_str(&format!(", \"ruleIndex\": {index}"));
        }
        out.push_str(", ");
        push_kv(&mut out, "level", level(d.severity));
        out.push_str(", \"message\": {");
        let text = match &d.help {
            Some(help) => format!("{}\nhelp: {help}", d.message),
            None => d.message.clone(),
        };
        push_kv(&mut out, "text", &text);
        out.push('}');
        if let Site::Source { file, line, column } = &d.site {
            out.push_str(", \"locations\": [{\"physicalLocation\": {\"artifactLocation\": {");
            push_kv(&mut out, "uri", file);
            out.push_str(", \"uriBaseId\": \"%SRCROOT%\"}, \"region\": {");
            out.push_str(&format!(
                "\"startLine\": {}, \"startColumn\": {}",
                line.max(&1),
                column.max(&1)
            ));
            out.push_str("}}}]");
        }
        out.push('}');
        if i + 1 < diags.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("      ]");
    if let Some(bag) = properties {
        out.push_str(",\n      \"properties\": ");
        out.push_str(bag);
    }
    out.push_str("\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse_value, Value};
    use crate::rules::RULES;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic::error("lint/no-float-eq", "x == 0.5")
                .at_source("crates/a/src/lib.rs", 3, 9)
                .with_help("compare against a tolerance"),
            Diagnostic::warning("lint/missing-must-use", "builder").at_source(
                "crates/b/src/lib.rs",
                7,
                5,
            ),
            Diagnostic::error("range/accumulator-overflow", "acc exceeds i32")
                .at_layer(0, "fully-connected"),
            Diagnostic::error(
                "schedule/buffer-undersized",
                "channel `encode -> update` declares capacity 0, below the minimal safe bound 1",
            ),
        ]
    }

    fn run(log: &Value) -> &Value {
        &log.get("runs").unwrap().as_arr().unwrap()[0]
    }

    #[test]
    fn output_is_valid_json_with_sarif_envelope() {
        let log = parse_value(&encode(&sample())).expect("sarif parses");
        assert_eq!(log.get("version").unwrap().as_str(), Some("2.1.0"));
        assert!(log
            .get("$schema")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("sarif-2.1.0"));
        assert_eq!(log.get("runs").unwrap().as_arr().unwrap().len(), 1);
    }

    #[test]
    fn driver_lists_every_registered_rule_even_on_an_empty_run() {
        let log = parse_value(&encode(&[])).unwrap();
        let driver = run(&log).get("tool").unwrap().get("driver").unwrap();
        assert_eq!(driver.get("name").unwrap().as_str(), Some("hd-lint"));
        let rules = driver.get("rules").unwrap().as_arr().unwrap();
        let expected = registered_rules();
        assert_eq!(rules.len(), expected.len());
        assert!(rules.len() > RULES.len(), "range/schedule rules missing");
        for (rule, (id, meta)) in rules.iter().zip(&expected) {
            assert_eq!(rule.get("id").unwrap().as_str().unwrap(), id);
            assert_eq!(
                rule.get("defaultConfiguration")
                    .unwrap()
                    .get("level")
                    .unwrap()
                    .as_str()
                    .unwrap(),
                level(meta.severity)
            );
        }
    }

    #[test]
    fn registered_rule_ids_are_unique_and_namespaced() {
        let rules = registered_rules();
        for (i, (id, _)) in rules.iter().enumerate() {
            assert!(
                id.starts_with("lint/") || id.starts_with("range/") || id.starts_with("schedule/"),
                "{id}"
            );
            assert!(
                !rules.iter().skip(i + 1).any(|(other, _)| other == id),
                "duplicate rule id {id}"
            );
        }
    }

    #[test]
    fn custom_driver_name_is_used() {
        let log = parse_value(&encode_as("hyperedge-verify", &[])).unwrap();
        let driver = run(&log).get("tool").unwrap().get("driver").unwrap();
        assert_eq!(
            driver.get("name").unwrap().as_str(),
            Some("hyperedge-verify")
        );
    }

    #[test]
    fn source_results_carry_physical_locations() {
        let log = parse_value(&encode(&sample())).unwrap();
        let results = run(&log).get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 4);
        let first = &results[0];
        assert_eq!(
            first.get("ruleId").unwrap().as_str(),
            Some("lint/no-float-eq")
        );
        assert_eq!(first.get("ruleIndex").unwrap().as_usize(), Some(1));
        assert_eq!(first.get("level").unwrap().as_str(), Some("error"));
        assert!(first
            .get("message")
            .unwrap()
            .get("text")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("help: compare"));
        let region = first.get("locations").unwrap().as_arr().unwrap()[0]
            .get("physicalLocation")
            .unwrap();
        assert_eq!(
            region
                .get("artifactLocation")
                .unwrap()
                .get("uri")
                .unwrap()
                .as_str(),
            Some("crates/a/src/lib.rs")
        );
        assert_eq!(
            region
                .get("region")
                .unwrap()
                .get("startLine")
                .unwrap()
                .as_usize(),
            Some(3)
        );
    }

    #[test]
    fn range_and_schedule_results_resolve_to_rule_metadata() {
        let log = parse_value(&encode(&sample())).unwrap();
        let results = run(&log).get("results").unwrap().as_arr().unwrap();
        let driver_rules = run(&log)
            .get("tool")
            .unwrap()
            .get("driver")
            .unwrap()
            .get("rules")
            .unwrap()
            .as_arr()
            .unwrap();
        for result in &results[2..] {
            let id = result.get("ruleId").unwrap().as_str().unwrap();
            let index = result
                .get("ruleIndex")
                .unwrap_or_else(|| panic!("{id} has no ruleIndex"))
                .as_usize()
                .unwrap();
            assert_eq!(
                driver_rules[index].get("id").unwrap().as_str().unwrap(),
                id,
                "ruleIndex must point at the matching driver rule"
            );
        }
        // Layer-level sites still (correctly) carry no location.
        assert!(results[2].get("locations").is_none());
    }

    #[test]
    fn unknown_codes_omit_rule_index() {
        let diags = vec![Diagnostic::error("custom/unregistered", "one-off")];
        let log = parse_value(&encode(&diags)).unwrap();
        let results = run(&log).get("results").unwrap().as_arr().unwrap();
        assert!(results[0].get("ruleIndex").is_none());
    }

    #[test]
    fn empty_report_still_valid() {
        let log = parse_value(&encode(&[])).unwrap();
        assert_eq!(run(&log).get("results").unwrap().as_arr().unwrap().len(), 0);
    }

    #[test]
    fn run_property_bag_is_injected_verbatim() {
        let bag = "{\"schedules\": [{\"name\": \"overlapped-invoke\"}]}";
        let log = parse_value(&encode_with_properties(
            "hyperedge-verify",
            &sample(),
            Some(bag),
        ))
        .expect("output with properties parses");
        let schedules = run(&log)
            .get("properties")
            .expect("run carries a properties bag")
            .get("schedules")
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(
            schedules[0].get("name").unwrap().as_str(),
            Some("overlapped-invoke")
        );
        // Without a bag the run stays bag-free (and encode_as delegates).
        let plain = parse_value(&encode_as("hyperedge-verify", &sample())).unwrap();
        assert!(run(&plain).get("properties").is_none());
    }

    #[test]
    fn messages_with_quotes_and_newlines_escape_cleanly() {
        let diags = vec![Diagnostic::error("lint/x", "say \"hi\"\nline2")];
        let log = parse_value(&encode(&diags)).expect("escaped output parses");
        let results = run(&log).get("results").unwrap().as_arr().unwrap();
        assert_eq!(
            results[0]
                .get("message")
                .unwrap()
                .get("text")
                .unwrap()
                .as_str(),
            Some("say \"hi\"\nline2")
        );
    }
}
