//! JSON encoding and parsing for diagnostic reports.
//!
//! The build environment has no real serde, so `--format json` is
//! implemented directly: a small encoder over [`Diagnostic`] and a strict
//! recursive-descent parser that round-trips the encoder's output. The
//! schema is an array of objects:
//!
//! ```json
//! [{"severity": "error", "code": "lint/no-float-eq", "message": "…",
//!   "site": {"kind": "source", "file": "…", "line": 3, "column": 9},
//!   "help": "…"}]
//! ```
//!
//! `site.kind` is `"global"`, `"layer"` (with `index`, `layer`) or
//! `"source"` (with `file`, `line`, `column`); `help` is `null` when
//! absent.

use wide_nn::diag::{Diagnostic, Severity, Site};

/// Escapes `s` as a quoted JSON string literal — for callers (e.g. the
/// CLI's enriched `verify --schedule` output) that assemble structured
/// JSON around the diagnostic arrays this module encodes.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(&mut out, s);
    out
}

pub(crate) fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Encodes diagnostics as a JSON array (stable key order).
pub fn encode(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {\"severity\": ");
        escape_into(&mut out, d.severity.name());
        out.push_str(", \"code\": ");
        escape_into(&mut out, &d.code);
        out.push_str(", \"message\": ");
        escape_into(&mut out, &d.message);
        out.push_str(", \"site\": ");
        match &d.site {
            Site::Global => out.push_str("{\"kind\": \"global\"}"),
            Site::Layer { index, layer } => {
                out.push_str(&format!(
                    "{{\"kind\": \"layer\", \"index\": {index}, \"layer\": "
                ));
                escape_into(&mut out, layer);
                out.push('}');
            }
            Site::Source { file, line, column } => {
                out.push_str("{\"kind\": \"source\", \"file\": ");
                escape_into(&mut out, file);
                out.push_str(&format!(", \"line\": {line}, \"column\": {column}}}"));
            }
        }
        out.push_str(", \"help\": ");
        match &d.help {
            Some(help) => escape_into(&mut out, help),
            None => out.push_str("null"),
        }
        out.push('}');
    }
    out.push_str("\n]");
    out
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    pub(crate) fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn as_usize(&self) -> Option<usize> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as usize),
            _ => None,
        }
    }

    pub(crate) fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one JSON document into a [`Value`] tree, rejecting trailing
/// data. Shared with the SARIF validity tests.
pub(crate) fn parse_value(text: &str) -> Result<Value, String> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let root = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing data at byte {}", parser.pos));
    }
    Ok(root)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error<T>(&self, message: &str) -> Result<T, String> {
        Err(format!("json parse error at byte {}: {message}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            self.error(&format!("expected {:?}", b as char))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => self.error("expected a value"),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.error(&format!("expected {word}"))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("json parse error at byte {start}: bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return self.error("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return self.error("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32);
                            let Some(c) = hex else {
                                return self.error("bad \\u escape");
                            };
                            self.pos += 4;
                            out.push(c);
                        }
                        _ => return self.error("unknown escape"),
                    }
                }
                _ => {
                    // Re-sync to a char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    self.pos = start + width;
                    let Some(chunk) = self
                        .bytes
                        .get(start..start + width)
                        .and_then(|c| std::str::from_utf8(c).ok())
                    else {
                        return self.error("bad UTF-8");
                    };
                    out.push_str(chunk);
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return self.error("expected , or ]"),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return self.error("expected , or }"),
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn decode_site(value: &Value) -> Result<Site, String> {
    let kind = value
        .get("kind")
        .and_then(Value::as_str)
        .ok_or_else(|| "site missing \"kind\"".to_owned())?;
    match kind {
        "global" => Ok(Site::Global),
        "layer" => Ok(Site::Layer {
            index: value
                .get("index")
                .and_then(Value::as_usize)
                .ok_or_else(|| "layer site missing \"index\"".to_owned())?,
            layer: value
                .get("layer")
                .and_then(Value::as_str)
                .ok_or_else(|| "layer site missing \"layer\"".to_owned())?
                .to_owned(),
        }),
        "source" => Ok(Site::Source {
            file: value
                .get("file")
                .and_then(Value::as_str)
                .ok_or_else(|| "source site missing \"file\"".to_owned())?
                .to_owned(),
            line: value
                .get("line")
                .and_then(Value::as_usize)
                .ok_or_else(|| "source site missing \"line\"".to_owned())?,
            column: value
                .get("column")
                .and_then(Value::as_usize)
                .ok_or_else(|| "source site missing \"column\"".to_owned())?,
        }),
        other => Err(format!("unknown site kind {other:?}")),
    }
}

/// Parses a JSON report produced by [`encode`] back into diagnostics.
///
/// # Errors
///
/// Returns a description of the first syntax or schema problem.
pub fn parse(text: &str) -> Result<Vec<Diagnostic>, String> {
    let root = parse_value(text)?;
    let Some(items) = root.as_arr() else {
        return Err("expected a top-level array".to_owned());
    };
    items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            let field = |name: &str| {
                item.get(name)
                    .and_then(Value::as_str)
                    .map(str::to_owned)
                    .ok_or_else(|| format!("diagnostic {i}: missing string \"{name}\""))
            };
            let severity_name = field("severity")?;
            let severity = Severity::parse(&severity_name)
                .ok_or_else(|| format!("diagnostic {i}: unknown severity {severity_name:?}"))?;
            let site = decode_site(
                item.get("site")
                    .ok_or_else(|| format!("diagnostic {i}: missing \"site\""))?,
            )
            .map_err(|e| format!("diagnostic {i}: {e}"))?;
            let help = match item.get("help") {
                None | Some(Value::Null) => None,
                Some(Value::Str(s)) => Some(s.clone()),
                Some(_) => return Err(format!("diagnostic {i}: \"help\" must be string or null")),
            };
            Ok(Diagnostic {
                severity,
                code: field("code")?,
                message: field("message")?,
                site,
                help,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic::error("lint/no-float-eq", "x == 0.5 \"quoted\"")
                .at_source("crates/a/src/lib.rs", 3, 9)
                .with_help("line1\nline2"),
            Diagnostic::warning("lint/missing-must-use", "builder").at_layer(2, "fully-connected"),
            Diagnostic::note("verify/placement-boundary", "boundary"),
        ]
    }

    #[test]
    fn round_trip_preserves_everything() {
        let diags = sample();
        let text = encode(&diags);
        let back = parse(&text).unwrap();
        assert_eq!(back, diags);
    }

    #[test]
    fn double_round_trip_is_stable() {
        let text = encode(&sample());
        let text2 = encode(&parse(&text).unwrap());
        assert_eq!(text, text2);
    }

    #[test]
    fn empty_report_round_trips() {
        assert_eq!(parse(&encode(&[])).unwrap(), vec![]);
    }

    #[test]
    fn unicode_and_control_chars_round_trip() {
        let diags = vec![Diagnostic::error("lint/x", "héllo \u{1} — em-dash")];
        assert_eq!(parse(&encode(&diags)).unwrap(), diags);
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(parse("[{").is_err());
        assert!(parse("{}").is_err());
        assert!(parse("[1]").is_err());
        assert!(parse("[] trailing").is_err());
    }

    #[test]
    fn bad_severity_rejected() {
        let text = r#"[{"severity": "fatal", "code": "c", "message": "m",
                       "site": {"kind": "global"}, "help": null}]"#;
        let err = parse(text).unwrap_err();
        assert!(err.contains("unknown severity"), "{err}");
    }

    #[test]
    fn unknown_site_kind_rejected() {
        let text = r#"[{"severity": "error", "code": "c", "message": "m",
                       "site": {"kind": "galaxy"}, "help": null}]"#;
        assert!(parse(text).unwrap_err().contains("unknown site kind"));
    }
}
