//! A lightweight Rust source scanner for the lint rules.
//!
//! Full parsing (syn-style) is unavailable offline, so the rules operate
//! on a *masked* view of each file: comments and the interiors of string
//! and char literals are blanked out with spaces (newlines preserved), so
//! byte offsets, line numbers and columns in the masked text match the
//! original exactly. On top of that the scanner marks the byte ranges of
//! `#[cfg(test)]` items so rules can skip test code.
//!
//! The scanner is a heuristic, not a grammar: it understands line and
//! (nested) block comments, regular / raw / byte strings, char literals
//! vs. lifetimes, and attribute-to-brace item extents. That is enough for
//! token-level lint rules over idiomatic Rust; pathological token streams
//! may confuse it, which is acceptable for a repository-internal linter.

/// A masked view of one source file.
#[derive(Debug)]
pub struct MaskedSource {
    /// Original text (used only for doc-comment inspection).
    raw: String,
    /// Text with comments and literal interiors blanked by spaces.
    code: String,
    /// Per-byte flag: inside a `#[cfg(test)]` item.
    test_mask: Vec<bool>,
}

impl MaskedSource {
    /// Scans `source` into a masked view.
    #[must_use]
    pub fn new(source: &str) -> Self {
        let code = mask(source);
        let test_mask = test_regions(&code);
        MaskedSource {
            raw: source.to_owned(),
            code,
            test_mask,
        }
    }

    /// The masked code (same length and line structure as the original).
    pub fn code(&self) -> &str {
        &self.code
    }

    /// The original, unmasked text.
    pub fn raw(&self) -> &str {
        &self.raw
    }

    /// Whether the byte at `offset` lies inside a `#[cfg(test)]` item.
    pub fn is_test(&self, offset: usize) -> bool {
        self.test_mask.get(offset).copied().unwrap_or(false)
    }

    /// Converts a byte offset to a one-based `(line, column)` pair.
    pub fn line_col(&self, offset: usize) -> (usize, usize) {
        let upto = &self.code.as_bytes()[..offset.min(self.code.len())];
        let line = upto.iter().filter(|&&b| b == b'\n').count() + 1;
        let col = offset
            - upto
                .iter()
                .rposition(|&b| b == b'\n')
                .map(|p| p + 1)
                .unwrap_or(0)
            + 1;
        (line, col)
    }
}

/// Blanks comments and literal interiors, preserving length and newlines.
fn mask(source: &str) -> String {
    let bytes = source.as_bytes();
    let mut out = bytes.to_vec();
    let mut i = 0;

    let blank = |out: &mut [u8], range: std::ops::Range<usize>| {
        for b in &mut out[range] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    };

    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let end = source[i..].find('\n').map(|p| i + p).unwrap_or(bytes.len());
                blank(&mut out, i..end);
                i = end;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                blank(&mut out, i..j);
                i = j;
            }
            b'"' => {
                // Raw string? Look back over `#`s to an `r` (or `br`) that
                // does not continue an identifier.
                let mut hashes = 0usize;
                let mut k = i;
                while k > 0 && bytes[k - 1] == b'#' {
                    hashes += 1;
                    k -= 1;
                }
                let is_raw = k > 0
                    && (bytes[k - 1] == b'r'
                        && (k < 2 || !is_ident_byte(bytes[k - 2]) || bytes[k - 2] == b'b'));
                let (end, terminated) = if is_raw {
                    find_raw_string_end(bytes, i + 1, hashes)
                } else {
                    find_string_end(bytes, i + 1)
                };
                // Keep the closing delimiter visible only when it exists;
                // an unterminated literal is blanked to end of input so no
                // phantom tokens survive at the tail.
                let tail = if terminated {
                    if is_raw {
                        hashes + 1
                    } else {
                        1
                    }
                } else {
                    0
                };
                blank(&mut out, i + 1..end - tail);
                i = end;
            }
            b'\'' => {
                // Char literal vs. lifetime. A literal is 'x', '\..', or a
                // multi-byte scalar; a lifetime is 'ident not followed by a
                // closing quote.
                if let Some(end) = char_literal_end(bytes, i) {
                    blank(&mut out, i + 1..end - 1);
                    i = end;
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }

    // `out` only replaces bytes with ASCII spaces, so it stays valid UTF-8.
    String::from_utf8(out).expect("masking preserves UTF-8")
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Returns `(end, terminated)`: one past the closing quote when the
/// literal terminates, or `(len, false)` when it runs off the input.
fn find_string_end(bytes: &[u8], mut i: usize) -> (usize, bool) {
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return (i + 1, true),
            _ => i += 1,
        }
    }
    (bytes.len(), false)
}

/// Returns `(end, terminated)` for a raw string opened with `hashes`
/// `#`s: the closing quote must be followed by exactly that many `#`s.
fn find_raw_string_end(bytes: &[u8], mut i: usize, hashes: usize) -> (usize, bool) {
    while i < bytes.len() {
        if bytes[i] == b'"'
            && bytes[i + 1..]
                .iter()
                .take(hashes)
                .take_while(|&&b| b == b'#')
                .count()
                == hashes
        {
            return (i + 1 + hashes, true);
        }
        i += 1;
    }
    (bytes.len(), false)
}

fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    let next = *bytes.get(i + 1)?;
    if next == b'\\' {
        // Escape: skip to the closing quote.
        let mut j = i + 2;
        while j < bytes.len() {
            match bytes[j] {
                b'\\' => j += 2,
                b'\'' => return Some(j + 1),
                _ => j += 1,
            }
        }
        return None;
    }
    if is_ident_byte(next) && next.is_ascii() {
        // 'x' is a char literal only when the very next byte closes it;
        // otherwise it is a lifetime ('a, 'static).
        return (bytes.get(i + 2) == Some(&b'\'')).then_some(i + 3);
    }
    // Punctuation or a multi-byte scalar: a closing quote within the next
    // few bytes makes it a char literal.
    let window = bytes.get(i + 1..(i + 6).min(bytes.len()))?;
    for (k, &b) in window.iter().enumerate() {
        if b == b'\'' {
            return (k > 0).then_some(i + 1 + k + 1);
        }
        if b == b'\n' {
            return None;
        }
    }
    None
}

/// Marks the byte extents of `#[cfg(test)]` items in masked code.
fn test_regions(code: &str) -> Vec<bool> {
    let bytes = code.as_bytes();
    let mut mask = vec![false; bytes.len()];
    let mut search = 0;
    while let Some(found) = code[search..].find("#[cfg(test)]") {
        let attr_start = search + found;
        let mut i = attr_start + "#[cfg(test)]".len();
        // Skip whitespace and any further attributes up to the item body.
        let end = item_end(bytes, &mut i);
        for flag in &mut mask[attr_start..end.min(bytes.len())] {
            *flag = true;
        }
        search = end.max(attr_start + 1);
    }
    mask
}

/// From the end of an attribute, advances past further attributes to the
/// item's `{ ... }` body (or terminating `;`) and returns the end offset.
fn item_end(bytes: &[u8], i: &mut usize) -> usize {
    loop {
        while *i < bytes.len() && bytes[*i].is_ascii_whitespace() {
            *i += 1;
        }
        if *i < bytes.len() && bytes[*i] == b'#' {
            // Another attribute: skip its bracketed payload.
            while *i < bytes.len() && bytes[*i] != b']' {
                *i += 1;
            }
            *i += 1;
            continue;
        }
        break;
    }
    while *i < bytes.len() && bytes[*i] != b'{' && bytes[*i] != b';' {
        *i += 1;
    }
    if *i >= bytes.len() || bytes[*i] == b';' {
        return (*i + 1).min(bytes.len());
    }
    brace_match(bytes, *i)
}

/// Given the offset of a `{`, returns the offset one past its matching
/// `}` (or the end of input).
pub fn brace_match(bytes: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    bytes.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_blanked() {
        let m = MaskedSource::new("let x = 1; // unwrap() here\nlet y = 2;");
        assert!(!m.code().contains("unwrap"));
        assert!(m.code().contains("let y = 2;"));
        assert_eq!(m.code().len(), m.raw().len());
    }

    #[test]
    fn nested_block_comments_are_blanked() {
        let m = MaskedSource::new("a /* outer /* inner */ still */ b");
        assert_eq!(m.code().trim(), "a                               b".trim());
        assert!(m.code().starts_with("a "));
        assert!(m.code().ends_with(" b"));
    }

    #[test]
    fn string_interiors_are_blanked_but_quotes_remain() {
        let m = MaskedSource::new(r#"let s = "x == 1.0"; let t = 2;"#);
        assert!(!m.code().contains("1.0"));
        assert!(m.code().contains('"'));
        assert!(m.code().contains("let t = 2;"));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let m = MaskedSource::new(r#"let s = "a\"b == 0.5"; let u = 3;"#);
        assert!(!m.code().contains("0.5"));
        assert!(m.code().contains("let u = 3;"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let m = MaskedSource::new("let s = r#\"panic!(\"x\")\"#; let v = 4;");
        assert!(!m.code().contains("panic"));
        assert!(m.code().contains("let v = 4;"));
    }

    #[test]
    fn char_literals_blank_but_lifetimes_survive() {
        let m = MaskedSource::new("fn f<'a>(x: &'a str) { let c = '='; let d = '\\n'; }");
        assert!(m.code().contains("<'a>"));
        assert!(m.code().contains("&'a str"));
        assert!(!m.code().contains("'='"));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}";
        let m = MaskedSource::new(src);
        let unwrap_at = src.find("unwrap").unwrap();
        let live_at = src.find("live").unwrap();
        let after_at = src.find("after").unwrap();
        assert!(m.is_test(unwrap_at));
        assert!(!m.is_test(live_at));
        assert!(!m.is_test(after_at));
    }

    #[test]
    fn cfg_test_with_extra_attributes() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests { fn t() {} }\nfn live() {}";
        let m = MaskedSource::new(src);
        assert!(m.is_test(src.find("fn t").unwrap()));
        assert!(!m.is_test(src.find("live").unwrap()));
    }

    #[test]
    fn line_col_is_one_based() {
        let m = MaskedSource::new("ab\ncde\nf");
        assert_eq!(m.line_col(0), (1, 1));
        assert_eq!(m.line_col(3), (2, 1));
        assert_eq!(m.line_col(5), (2, 3));
        assert_eq!(m.line_col(7), (3, 1));
    }

    #[test]
    fn brace_match_finds_closer() {
        let src = b"{ a { b } c } d";
        assert_eq!(brace_match(src, 0), 13);
    }

    #[test]
    fn raw_string_containing_line_comment_marker() {
        let m = MaskedSource::new("let s = r\"a//b\"; let z = 5;");
        assert!(!m.code().contains("//"));
        assert!(m.code().contains("let z = 5;"));
    }

    #[test]
    fn raw_string_containing_block_comment_markers() {
        // `/*` inside the literal must not open a comment that swallows
        // the rest of the file.
        let m = MaskedSource::new("let s = r\"x /* y\"; let z = 5; /* real */ let w = 6;");
        assert!(m.code().contains("let z = 5;"));
        assert!(m.code().contains("let w = 6;"));
        assert!(!m.code().contains("real"));
    }

    #[test]
    fn multi_hash_raw_string_ignores_shorter_closers() {
        let m = MaskedSource::new("let s = r##\"x \"# y\"##; let q = 7;");
        assert!(!m.code().contains("x "));
        assert!(!m.code().contains("# y"));
        assert!(m.code().contains("let q = 7;"));
    }

    #[test]
    fn byte_raw_strings_are_blanked() {
        let m = MaskedSource::new("let s = br#\"panic!(\"p\")\"#; let v = 4;");
        assert!(!m.code().contains("panic"));
        assert!(m.code().contains("let v = 4;"));
    }

    #[test]
    fn raw_string_backslash_is_not_an_escape() {
        // r"\" is a complete raw string holding one backslash.
        let m = MaskedSource::new("let s = r\"\\\"; let w = 6;");
        assert!(!m.code().contains('\\'));
        assert!(m.code().contains("let w = 6;"));
    }

    #[test]
    fn unterminated_string_blanked_to_eof() {
        let m = MaskedSource::new("let s = \"abc == 0.5");
        assert!(!m.code().contains("0.5"), "{:?}", m.code());
        assert!(!m.code().contains("abc"));
        assert_eq!(m.code().len(), m.raw().len());
    }

    #[test]
    fn unterminated_raw_string_blanked_to_eof() {
        let m = MaskedSource::new("let s = r#\"abc == 0.5\"");
        // The lone `"` lacks the closing `#`, so the literal never ends.
        assert!(!m.code().contains("0.5"), "{:?}", m.code());
        assert_eq!(m.code().len(), m.raw().len());
    }

    #[test]
    fn unterminated_block_comment_blanked_to_eof() {
        let m = MaskedSource::new("a /* open /* deeper */ still 0.5");
        assert!(!m.code().contains("0.5"));
        assert!(m.code().starts_with("a "));
    }

    #[test]
    fn deeply_nested_and_empty_block_comments() {
        let m = MaskedSource::new("a /*1/*2/*3*/2*/1*/ b /**/ c");
        assert!(m.code().contains('a'));
        assert!(m.code().contains('b'));
        assert!(m.code().contains('c'));
        assert!(!m.code().contains('1'));
        assert!(!m.code().contains('3'));
    }
}
