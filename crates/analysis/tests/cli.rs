//! End-to-end tests of the `hd-lint` binary: exit codes, allowlisting and
//! JSON output.

use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/analysis sits two levels below the root")
        .to_path_buf()
}

fn hd_lint() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hd-lint"))
}

/// A scratch directory under target/ so test fixtures never leave the
/// repository.
fn fixture_dir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    std::fs::create_dir_all(&dir).expect("create fixture dir");
    dir
}

#[test]
fn repository_lints_clean() {
    let output = hd_lint()
        .arg("--root")
        .arg(workspace_root())
        .arg("--deny-warnings")
        .output()
        .expect("run hd-lint");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "hd-lint found violations in the repository:\n{stdout}"
    );
    assert!(
        stdout.contains("files scanned"),
        "summary missing:\n{stdout}"
    );
}

#[test]
fn seeded_violation_fails_with_exit_code_one() {
    let dir = fixture_dir("seeded-violation");
    let fixture = dir.join("violation.rs");
    std::fs::write(
        &fixture,
        "pub fn is_zero(a: f32) -> bool {\n    a == 0.0\n}\n",
    )
    .expect("write fixture");

    let output = hd_lint()
        .arg("--root")
        .arg(workspace_root())
        .arg(&fixture)
        .output()
        .expect("run hd-lint");
    assert_eq!(output.status.code(), Some(1), "violation must exit 1");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("lint/no-float-eq"),
        "wrong finding:\n{stdout}"
    );
}

#[test]
fn seeded_violation_can_be_allowlisted() {
    let dir = fixture_dir("allowlisted-violation");
    let fixture = dir.join("violation.rs");
    std::fs::write(
        &fixture,
        "pub fn is_zero(a: f32) -> bool {\n    a == 0.0\n}\n",
    )
    .expect("write fixture");
    let allowlist = dir.join("lint.toml");
    std::fs::write(
        &allowlist,
        "[[allow]]\nrule = \"no-float-eq\"\npath = \"violation.rs\"\nreason = \"fixture\"\n",
    )
    .expect("write allowlist");

    let output = hd_lint()
        .arg("--root")
        .arg(workspace_root())
        .arg("--allowlist")
        .arg(&allowlist)
        .arg(&fixture)
        .output()
        .expect("run hd-lint");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "allowlisted finding must exit 0:\n{stdout}"
    );
    assert!(
        stdout.contains("1 allowlisted"),
        "not suppressed:\n{stdout}"
    );
}

#[test]
fn json_output_round_trips() {
    let dir = fixture_dir("json-round-trip");
    let fixture = dir.join("violation.rs");
    std::fs::write(
        &fixture,
        "pub fn f(v: &[f32]) -> f32 {\n    if v[0] != 1.0 { 2.0 } else { 3.0 }\n}\n",
    )
    .expect("write fixture");

    let output = hd_lint()
        .arg("--root")
        .arg(workspace_root())
        .arg("--format")
        .arg("json")
        .arg(&fixture)
        .output()
        .expect("run hd-lint");
    assert_eq!(output.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&output.stdout);
    let parsed = hd_analysis::json::parse(&stdout).expect("valid JSON");
    assert!(!parsed.is_empty(), "expected findings:\n{stdout}");
    assert_eq!(
        hd_analysis::json::encode(&parsed),
        stdout.trim_end(),
        "encode(parse(x)) must reproduce x"
    );
}

#[test]
fn malformed_allowlist_is_a_usage_error() {
    let dir = fixture_dir("bad-allowlist");
    let allowlist = dir.join("lint.toml");
    std::fs::write(&allowlist, "[[allow]]\nrule = \"no-such-rule\"\n").expect("write allowlist");
    let output = hd_lint()
        .arg("--root")
        .arg(workspace_root())
        .arg("--allowlist")
        .arg(&allowlist)
        .output()
        .expect("run hd-lint");
    assert_eq!(output.status.code(), Some(2), "bad allowlist must exit 2");
}
