//! Robustness tests for the binary model containers: random mutations
//! and truncations must never panic — they either parse to a valid model
//! or return a clean error.

use proptest::prelude::*;

use hd_tensor::rng::DetRng;
use hd_tensor::Matrix;
use wide_nn::{serialize, Activation, ModelBuilder, QuantizedModel};

fn sample_blob(seed: u64) -> Vec<u8> {
    let mut rng = DetRng::new(seed);
    let model = ModelBuilder::new(6)
        .fully_connected(Matrix::random_normal(6, 20, &mut rng))
        .unwrap()
        .activation(Activation::Tanh)
        .fully_connected(Matrix::random_normal(20, 3, &mut rng))
        .unwrap()
        .build()
        .unwrap();
    serialize::write_model(&model).to_vec()
}

fn sample_quant_blob(seed: u64) -> Vec<u8> {
    let mut rng = DetRng::new(seed);
    let model = ModelBuilder::new(6)
        .fully_connected(Matrix::random_normal(6, 20, &mut rng))
        .unwrap()
        .activation(Activation::Tanh)
        .build()
        .unwrap();
    let calib = Matrix::random_normal(8, 6, &mut rng);
    let q = QuantizedModel::quantize(&model, &calib).unwrap();
    serialize::write_quantized_model(&q).to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn truncated_float_container_never_panics(seed in 0u64..50, cut in 0usize..2000) {
        let blob = sample_blob(seed);
        let cut = cut.min(blob.len());
        let _ = serialize::read_model(&blob[..cut]);
    }

    #[test]
    fn truncated_quant_container_never_panics(seed in 0u64..50, cut in 0usize..2000) {
        let blob = sample_quant_blob(seed);
        let cut = cut.min(blob.len());
        let _ = serialize::read_quantized_model(&blob[..cut]);
    }

    #[test]
    fn byte_flips_never_panic(seed in 0u64..20, pos in 0usize..600, bit in 0u8..8) {
        let mut blob = sample_blob(seed);
        let pos = pos % blob.len();
        blob[pos] ^= 1 << bit;
        // Either parses (mutation hit weight data) or errors — no panic.
        if let Ok(model) = serialize::read_model(&blob) {
            // If it parsed, the model is structurally valid.
            prop_assert!(model.input_dim() > 0 || model.output_dim() > 0);
        }
    }

    #[test]
    fn quant_byte_flips_never_panic(seed in 0u64..20, pos in 0usize..600, bit in 0u8..8) {
        let mut blob = sample_quant_blob(seed);
        let pos = pos % blob.len();
        blob[pos] ^= 1 << bit;
        let _ = serialize::read_quantized_model(&blob);
    }

    #[test]
    fn random_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = serialize::read_model(&bytes);
        let _ = serialize::read_quantized_model(&bytes);
        let _ = hdc_read_guard(&bytes);
    }
}

// hdc's container shares the robustness requirement; exercised here to
// keep all fuzzing in one place.
fn hdc_read_guard(bytes: &[u8]) -> bool {
    hdc::serialize::read_model(bytes).is_ok()
}
