//! Property tests for the static model-graph verifier: random layer
//! stacks must be accepted exactly when their dimensions chain and their
//! parameters fit the target buffer.

use proptest::collection::vec;
use proptest::prelude::*;

use hd_tensor::Matrix;
use wide_nn::{verify_graph, Activation, Layer, TargetSpec};

/// Builds a fully-connected stack whose layer widths follow `dims`
/// (`dims[0]` is the input width), with a tanh after every FC so each
/// stage matches the accelerator-friendly FC+activation pattern.
fn chained_stack(dims: &[usize]) -> (usize, Vec<Layer>) {
    let mut layers = Vec::new();
    for w in dims.windows(2) {
        layers.push(Layer::FullyConnected {
            weights: Matrix::filled(w[0], w[1], 0.5),
        });
        layers.push(Layer::Activation(Activation::Tanh));
    }
    (dims[0], layers)
}

fn param_bytes(layers: &[Layer]) -> usize {
    layers.iter().map(Layer::quantized_param_bytes).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chained_stacks_accept_iff_params_fit(
        dims in vec(1usize..9, 2..6),
        budget in 1usize..6000,
    ) {
        let (input_dim, layers) = chained_stack(&dims);
        let target = TargetSpec::try_new("prop", 8, 8, budget).unwrap();
        let report = verify_graph(input_dim, &layers, &target);
        let fits = report.param_bytes_required() <= budget;
        prop_assert_eq!(
            !report.has_errors(),
            fits,
            "dims {:?}, budget {}, required {}",
            dims.clone(),
            budget,
            report.param_bytes_required()
        );
        prop_assert_eq!(report.param_bytes_required(), param_bytes(&layers));
        if !fits {
            prop_assert!(report.errors().all(|d| d.code == "verify/over-capacity"));
        }
    }

    #[test]
    fn broken_chains_are_rejected_with_shape_mismatch(
        dims in vec(1usize..9, 3..6),
        break_at in 0usize..4,
        delta in 1usize..5,
    ) {
        let (input_dim, mut layers) = chained_stack(&dims);
        // Corrupt one FC layer's input width so the chain no longer links.
        let fc_indices: Vec<usize> = (0..layers.len()).step_by(2).collect();
        let broken = fc_indices[break_at % fc_indices.len()];
        let (rows, cols) = match &layers[broken] {
            Layer::FullyConnected { weights } => (weights.rows(), weights.cols()),
            _ => unreachable!("even indices are FC layers"),
        };
        layers[broken] = Layer::FullyConnected {
            weights: Matrix::filled(rows + delta, cols, 0.5),
        };
        let target = TargetSpec::try_new("prop", 8, 8, usize::MAX / 2).unwrap();
        let report = verify_graph(input_dim, &layers, &target);
        prop_assert!(report.has_errors());
        prop_assert!(
            report.errors().any(|d| d.code == "verify/shape-mismatch"),
            "expected shape mismatch, got {:?}",
            report.errors().map(|d| d.code.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn verifier_never_panics_on_arbitrary_dims(
        input_dim in 0usize..6,
        rows in 0usize..6,
        cols in 0usize..6,
        budget in 1usize..64,
    ) {
        // Zero dims and absurd budgets must come back as diagnostics, not
        // panics; the report is internally consistent either way.
        let layers = vec![Layer::FullyConnected {
            weights: Matrix::filled(rows, cols, 0.5),
        }];
        let target = TargetSpec::try_new("prop", 4, 4, budget).unwrap();
        let report = verify_graph(input_dim, &layers, &target);
        let ok = input_dim > 0 && rows == input_dim && cols > 0 && rows * cols <= budget;
        prop_assert_eq!(report.is_ok(), ok, "in {} w {}x{} b {}", input_dim, rows, cols, budget);
    }
}
