//! Compact binary container formats for float and quantized models.
//!
//! This is HyperEdge's stand-in for the TFLite flatbuffer: the framework
//! "generates TFLite model files and compiles those files for Edge TPU"
//! (paper, Section IV-B) — here, [`write_model`] produces a `.wnn` blob
//! and [`write_quantized_model`] a `.wnq` blob, and the cost of doing so
//! is charged to the *model generation* phase of the training-runtime
//! breakdown, exactly like the paper's Fig. 5.
//!
//! Layout (all little-endian):
//!
//! ```text
//! WNN1 | u32 version | u32 input_dim | u32 layer_count | layers...
//!   layer: u8 tag
//!     0 = fully-connected: u32 rows | u32 cols | f32 data...
//!     1 = activation:      u8 kind (0 tanh, 1 relu, 2 identity)
//!     2 = elementwise:     u8 op (0 add, 1 sub) | f32 lambda
//!
//! WNQ1 | u32 version | u32 input_dim | u32 output_dim | qparams(input)
//!      | u32 stage_count | stages...
//!   qparams: f32 scale | i32 zero_point
//!   stage: u8 tag
//!     0 = fully-connected: u32 rows | u32 cols | qparams(weights)
//!         | qparams(out) | i8 data...
//!     1 = lut:             qparams(in) | qparams(out) | 256 x i8
//!     2 = fully-connected, per-channel: u32 rows | u32 cols
//!         | qparams(out) | f32 x cols scales | i8 data...
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

use hd_quant::lut::ActivationLut;
use hd_quant::{QuantParams, QuantizedMatrix};
use hd_tensor::Matrix;

use crate::error::NnError;
use crate::layer::{Activation, ElementwiseOp, Layer};
use crate::model::Model;
use crate::quantized::{QuantStage, QuantizedModel};
use crate::Result;

const FLOAT_MAGIC: &[u8; 4] = b"WNN1";
const QUANT_MAGIC: &[u8; 4] = b"WNQ1";
const VERSION: u32 = 1;

/// Serializes a float model to its binary container.
///
/// # Examples
///
/// ```
/// use hd_tensor::Matrix;
/// use wide_nn::{serialize, Activation, ModelBuilder};
///
/// # fn main() -> Result<(), wide_nn::NnError> {
/// let model = ModelBuilder::new(2)
///     .fully_connected(Matrix::identity(2))?
///     .activation(Activation::Tanh)
///     .build()?;
/// let blob = serialize::write_model(&model);
/// let restored = serialize::read_model(&blob)?;
/// assert_eq!(restored, model);
/// # Ok(())
/// # }
/// ```
pub fn write_model(model: &Model) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(FLOAT_MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(model.input_dim() as u32);
    buf.put_u32_le(model.layers().len() as u32);
    for layer in model.layers() {
        match layer {
            Layer::FullyConnected { weights } => {
                buf.put_u8(0);
                buf.put_u32_le(weights.rows() as u32);
                buf.put_u32_le(weights.cols() as u32);
                for &v in weights.iter() {
                    buf.put_f32_le(v);
                }
            }
            Layer::Activation(act) => {
                buf.put_u8(1);
                buf.put_u8(match act {
                    Activation::Tanh => 0,
                    Activation::Relu => 1,
                    Activation::Identity => 2,
                });
            }
            Layer::Elementwise { op, lambda } => {
                buf.put_u8(2);
                buf.put_u8(match op {
                    ElementwiseOp::ScaledAdd => 0,
                    ElementwiseOp::ScaledSub => 1,
                });
                buf.put_f32_le(*lambda);
            }
        }
    }
    buf.freeze()
}

fn need(buf: &impl Buf, bytes: usize, what: &str) -> Result<()> {
    if buf.remaining() < bytes {
        return Err(NnError::Serialization(format!(
            "truncated input: need {bytes} more bytes for {what}"
        )));
    }
    Ok(())
}

/// Checked `rows * cols * elem_size`, rejecting dimension fields whose
/// product overflows (a corrupted container must not trigger a huge or
/// overflowing allocation).
fn checked_len(rows: usize, cols: usize, elem_size: usize, what: &str) -> Result<usize> {
    rows.checked_mul(cols)
        .and_then(|n| n.checked_mul(elem_size))
        .ok_or_else(|| NnError::Serialization(format!("{what} dimensions overflow: {rows}x{cols}")))
}

/// Deserializes a float model written by [`write_model`].
///
/// # Errors
///
/// Returns [`NnError::Serialization`] on bad magic, version, tags, or
/// truncation, and shape-inference errors if the stored layers are
/// inconsistent.
pub fn read_model(data: &[u8]) -> Result<Model> {
    let mut buf = data;
    need(&buf, 12, "header")?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != FLOAT_MAGIC {
        return Err(NnError::Serialization(format!(
            "bad magic {magic:?}, expected {FLOAT_MAGIC:?}"
        )));
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(NnError::Serialization(format!(
            "unsupported version {version}"
        )));
    }
    let input_dim = buf.get_u32_le() as usize;
    need(&buf, 4, "layer count")?;
    let layer_count = buf.get_u32_le() as usize;
    let mut layers = Vec::with_capacity(layer_count);
    for i in 0..layer_count {
        need(&buf, 1, "layer tag")?;
        match buf.get_u8() {
            0 => {
                need(&buf, 8, "fc dims")?;
                let rows = buf.get_u32_le() as usize;
                let cols = buf.get_u32_le() as usize;
                let byte_len = checked_len(rows, cols, 4, "fc weights")?;
                need(&buf, byte_len, "fc weights")?;
                let mut data = Vec::with_capacity(rows * cols);
                for _ in 0..rows * cols {
                    data.push(buf.get_f32_le());
                }
                layers.push(Layer::FullyConnected {
                    weights: Matrix::from_vec(rows, cols, data)?,
                });
            }
            1 => {
                need(&buf, 1, "activation kind")?;
                let act = match buf.get_u8() {
                    0 => Activation::Tanh,
                    1 => Activation::Relu,
                    2 => Activation::Identity,
                    k => {
                        return Err(NnError::Serialization(format!(
                            "unknown activation kind {k} in layer {i}"
                        )))
                    }
                };
                layers.push(Layer::Activation(act));
            }
            2 => {
                need(&buf, 5, "elementwise body")?;
                let op = match buf.get_u8() {
                    0 => ElementwiseOp::ScaledAdd,
                    1 => ElementwiseOp::ScaledSub,
                    k => {
                        return Err(NnError::Serialization(format!(
                            "unknown elementwise op {k} in layer {i}"
                        )))
                    }
                };
                let lambda = buf.get_f32_le();
                layers.push(Layer::Elementwise { op, lambda });
            }
            tag => {
                return Err(NnError::Serialization(format!(
                    "unknown layer tag {tag} at layer {i}"
                )))
            }
        }
    }
    Model::new(input_dim, layers)
}

fn put_qparams(buf: &mut BytesMut, p: QuantParams) {
    buf.put_f32_le(p.scale());
    buf.put_i32_le(p.zero_point());
}

fn get_qparams(buf: &mut &[u8]) -> Result<QuantParams> {
    need(buf, 8, "quant params")?;
    let scale = buf.get_f32_le();
    let zp = buf.get_i32_le();
    QuantParams::from_raw(scale, zp).map_err(NnError::from)
}

/// Serializes a quantized model to its binary container.
pub fn write_quantized_model(model: &QuantizedModel) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(QUANT_MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(model.input_dim() as u32);
    buf.put_u32_le(model.output_dim() as u32);
    put_qparams(&mut buf, model.input_params());
    buf.put_u32_le(model.stages().len() as u32);
    for stage in model.stages() {
        match stage {
            QuantStage::FullyConnected {
                weights,
                out_params,
            } => {
                buf.put_u8(0);
                buf.put_u32_le(weights.rows() as u32);
                buf.put_u32_le(weights.cols() as u32);
                put_qparams(&mut buf, weights.params());
                put_qparams(&mut buf, *out_params);
                for &q in weights.as_slice() {
                    buf.put_i8(q);
                }
            }
            QuantStage::FullyConnectedPerChannel {
                weights,
                out_params,
            } => {
                buf.put_u8(2);
                buf.put_u32_le(weights.rows() as u32);
                buf.put_u32_le(weights.cols() as u32);
                put_qparams(&mut buf, *out_params);
                for &scale in weights.scales() {
                    buf.put_f32_le(scale);
                }
                // The raw i8 values are exactly dequantized / scale, so
                // exporting through the dequantized matrix is lossless.
                let deq = weights.dequantize();
                for r in 0..weights.rows() {
                    for c in 0..weights.cols() {
                        let scale = weights.scales()[c];
                        let q = (deq[(r, c)] / scale).round().clamp(-128.0, 127.0) as i8;
                        buf.put_i8(q);
                    }
                }
            }
            QuantStage::Lut(lut) => {
                buf.put_u8(1);
                put_qparams(&mut buf, lut.input_params());
                put_qparams(&mut buf, lut.output_params());
                for &q in lut.table() {
                    buf.put_i8(q);
                }
            }
        }
    }
    buf.freeze()
}

/// Deserializes a quantized model written by [`write_quantized_model`].
///
/// # Errors
///
/// Returns [`NnError::Serialization`] on bad magic, version, tags, or
/// truncation.
pub fn read_quantized_model(data: &[u8]) -> Result<QuantizedModel> {
    let mut buf = data;
    need(&buf, 12, "header")?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != QUANT_MAGIC {
        return Err(NnError::Serialization(format!(
            "bad magic {magic:?}, expected {QUANT_MAGIC:?}"
        )));
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(NnError::Serialization(format!(
            "unsupported version {version}"
        )));
    }
    let input_dim = buf.get_u32_le() as usize;
    need(&buf, 4, "output dim")?;
    let output_dim = buf.get_u32_le() as usize;
    let input_params = get_qparams(&mut buf)?;
    need(&buf, 4, "stage count")?;
    let stage_count = buf.get_u32_le() as usize;
    let mut stages = Vec::with_capacity(stage_count);
    for i in 0..stage_count {
        need(&buf, 1, "stage tag")?;
        match buf.get_u8() {
            0 => {
                need(&buf, 8, "fc dims")?;
                let rows = buf.get_u32_le() as usize;
                let cols = buf.get_u32_le() as usize;
                let wparams = get_qparams(&mut buf)?;
                let out_params = get_qparams(&mut buf)?;
                let byte_len = checked_len(rows, cols, 1, "fc weights")?;
                need(&buf, byte_len, "fc weights")?;
                let mut data = Vec::with_capacity(rows * cols);
                for _ in 0..rows * cols {
                    data.push(buf.get_i8());
                }
                stages.push(QuantStage::FullyConnected {
                    weights: QuantizedMatrix::from_raw(rows, cols, data, wparams),
                    out_params,
                });
            }
            1 => {
                let in_params = get_qparams(&mut buf)?;
                let out_params = get_qparams(&mut buf)?;
                need(&buf, 256, "lut table")?;
                let mut table = Vec::with_capacity(256);
                for _ in 0..256 {
                    table.push(buf.get_i8());
                }
                stages.push(QuantStage::Lut(ActivationLut::from_parts(
                    table, in_params, out_params,
                )));
            }
            2 => {
                need(&buf, 8, "per-channel fc dims")?;
                let rows = buf.get_u32_le() as usize;
                let cols = buf.get_u32_le() as usize;
                let out_params = get_qparams(&mut buf)?;
                let scale_bytes = checked_len(cols, 1, 4, "per-channel scales")?;
                need(&buf, scale_bytes, "per-channel scales")?;
                let mut scales = Vec::with_capacity(cols);
                for _ in 0..cols {
                    scales.push(buf.get_f32_le());
                }
                let byte_len = checked_len(rows, cols, 1, "per-channel weights")?;
                need(&buf, byte_len, "per-channel weights")?;
                // Reconstruct through the float matrix: scales define the
                // mapping exactly, so this is lossless.
                let mut weights = Matrix::zeros(rows, cols);
                for r in 0..rows {
                    for c in 0..cols {
                        let q = buf.get_i8();
                        let scale = scales[c];
                        if !scale.is_finite() || scale <= 0.0 {
                            return Err(NnError::Serialization(format!(
                                "invalid per-channel scale {scale} in stage {i}"
                            )));
                        }
                        weights[(r, c)] = scale * q as f32;
                    }
                }
                let rebuilt = hd_quant::per_channel::ChannelQuantizedMatrix::quantize(&weights)
                    .map_err(NnError::from)?;
                stages.push(QuantStage::FullyConnectedPerChannel {
                    weights: rebuilt,
                    out_params,
                });
            }
            tag => {
                return Err(NnError::Serialization(format!(
                    "unknown stage tag {tag} at stage {i}"
                )))
            }
        }
    }
    QuantizedModel::from_parts(input_dim, output_dim, input_params, stages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;
    use hd_tensor::rng::DetRng;

    fn sample_model() -> Model {
        let mut rng = DetRng::new(21);
        ModelBuilder::new(6)
            .fully_connected(Matrix::random_normal(6, 24, &mut rng))
            .unwrap()
            .activation(Activation::Tanh)
            .fully_connected(Matrix::random_normal(24, 3, &mut rng))
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn float_roundtrip_is_exact() {
        let model = sample_model();
        let blob = write_model(&model);
        let restored = read_model(&blob).unwrap();
        assert_eq!(restored, model);
    }

    #[test]
    fn float_roundtrip_with_elementwise_layer() {
        let model = ModelBuilder::new(3)
            .elementwise(ElementwiseOp::ScaledSub, 0.25)
            .build()
            .unwrap();
        let restored = read_model(&write_model(&model)).unwrap();
        assert_eq!(restored, model);
    }

    #[test]
    fn quantized_roundtrip_is_exact() {
        let model = sample_model();
        let mut rng = DetRng::new(22);
        let calib = Matrix::random_normal(32, 6, &mut rng);
        let qmodel = QuantizedModel::quantize(&model, &calib).unwrap();
        let blob = write_quantized_model(&qmodel);
        let restored = read_quantized_model(&blob).unwrap();
        assert_eq!(restored, qmodel);
        // Behavioural equality too.
        let a = qmodel.forward(&calib).unwrap();
        let b = restored.forward(&calib).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn per_channel_quantized_roundtrip_preserves_behaviour() {
        let model = sample_model();
        let mut rng = DetRng::new(23);
        let calib = Matrix::random_normal(16, 6, &mut rng);
        let qmodel = QuantizedModel::quantize_per_channel(&model, &calib).unwrap();
        let blob = write_quantized_model(&qmodel);
        let restored = read_quantized_model(&blob).unwrap();
        assert_eq!(
            restored.forward(&calib).unwrap(),
            qmodel.forward(&calib).unwrap()
        );
        assert_eq!(restored.param_bytes(), qmodel.param_bytes());
    }

    #[test]
    fn bad_magic_rejected() {
        let model = sample_model();
        let mut blob = write_model(&model).to_vec();
        blob[0] = b'X';
        assert!(matches!(
            read_model(&blob).unwrap_err(),
            NnError::Serialization(_)
        ));
    }

    #[test]
    fn wrong_container_kind_rejected() {
        let model = sample_model();
        let blob = write_model(&model);
        assert!(read_quantized_model(&blob).is_err());
    }

    #[test]
    fn truncated_input_rejected_everywhere() {
        let model = sample_model();
        let blob = write_model(&model);
        // Chop at a sample of prefix lengths; every one must fail cleanly.
        for len in [0, 3, 4, 11, 13, 20, blob.len() - 1] {
            assert!(
                read_model(&blob[..len]).is_err(),
                "prefix of {len} bytes unexpectedly parsed"
            );
        }
    }

    #[test]
    fn unknown_tags_rejected() {
        let model = sample_model();
        let mut blob = write_model(&model).to_vec();
        blob[16] = 9; // first layer tag (after the 16-byte header)
        assert!(matches!(
            read_model(&blob).unwrap_err(),
            NnError::Serialization(msg) if msg.contains("unknown layer tag")
        ));
    }

    #[test]
    fn bad_version_rejected() {
        let model = sample_model();
        let mut blob = write_model(&model).to_vec();
        blob[4] = 99;
        assert!(read_model(&blob).is_err());
    }

    #[test]
    fn blob_size_is_close_to_param_bytes() {
        let model = sample_model();
        let blob = write_model(&model);
        // 4 bytes per float parameter plus a small header.
        let params = model.param_count() * 4;
        assert!(blob.len() >= params);
        assert!(blob.len() < params + 128);
    }
}
