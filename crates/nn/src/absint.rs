//! Interval abstract interpretation over the quantized model graph.
//!
//! The paper's speedup rests on the accelerator's int8 MAC datapath: int8
//! operands, `i32` accumulators, requantization back to int8. A silent
//! accumulator overflow or a saturation collapse in that datapath corrupts
//! accuracy results without failing any test. This pass *proves* numeric
//! safety before anything runs: starting from the calibrated input range,
//! it propagates an integer interval through every quantized stage and
//! checks the worst case against the datapath widths of
//! `tpu_sim::SystolicArray` (i32 accumulators, int8 operands).
//!
//! The abstract domain is the lattice of integer intervals `[lo, hi]`;
//! every transfer function returns a *sound overapproximation* of the
//! concrete int8 executor in [`crate::QuantizedModel::run_quantized`]:
//!
//! * **Fully connected** — weights are compile-time constants, so for
//!   output column `j` the accumulator is bounded per column by
//!   `sum_p min/max(av_lo * w[p][j], av_hi * w[p][j])` with
//!   `av = q - zero_point` the centred input. The *running* prefix sums
//!   are tracked too, so an intermediate wrap that a final-sum bound would
//!   miss is still caught (the kernels accumulate in ascending `p` order).
//!   Requantization is monotone in the accumulator, so the output interval
//!   is the image of the accumulator endpoints under the same `f32`
//!   arithmetic the executor uses.
//! * **Per-channel fully connected** — identical, with one scale per
//!   output column and a zero weight zero-point.
//! * **Lookup-table activation** — the output interval is the min/max of
//!   the 256-entry table over the reachable index range.
//!
//! Checks emitted as [`Diagnostic`]s:
//!
//! * `range/accumulator-overflow` (**error**) — some reachable input can
//!   push an accumulator outside the datapath's `i32` range.
//! * `range/output-saturation` (warning) — at least a configurable
//!   fraction of a stage's output columns can clip at the int8 rails,
//!   i.e. calibration under-covers the worst case.
//! * `range/dead-range` (warning) — a stage's output is provably constant
//!   over the whole input range; its quantization range is dead.
//!
//! Soundness is pinned by a proptest suite (`tests/absint_soundness.rs`):
//! random models and inputs inside the declared calibration ranges never
//! produce a concrete accumulator or output outside the static interval.

use std::fmt;

use serde::{Deserialize, Serialize};

use hd_quant::lut::ActivationLut;
use hd_quant::QuantParams;

use crate::diag::{Diagnostic, Severity};
use crate::quantized::{QuantStage, QuantizedModel};

/// A closed integer interval `[lo, hi]` — one element of the abstract
/// domain. Kept in `i64` so worst-case int8 GEMM accumulators (which may
/// exceed `i32`) are represented exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

impl Interval {
    /// The full quantized int8 range `[-128, 127]`.
    pub const I8: Interval = Interval { lo: -128, hi: 127 };

    /// The degenerate zero interval.
    pub const ZERO: Interval = Interval { lo: 0, hi: 0 };

    /// Creates `[lo, hi]`, swapping the bounds if given in reverse.
    #[must_use]
    pub fn new(lo: i64, hi: i64) -> Self {
        if lo <= hi {
            Interval { lo, hi }
        } else {
            Interval { lo: hi, hi: lo }
        }
    }

    /// Whether `v` lies inside the interval.
    #[must_use]
    pub fn contains(&self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Whether the interval holds exactly one value.
    #[must_use]
    pub fn is_singleton(&self) -> bool {
        self.lo == self.hi
    }

    /// The least interval containing both `self` and `other` (lattice
    /// join).
    #[must_use]
    pub fn join(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }
}

impl Default for Interval {
    fn default() -> Self {
        Interval::ZERO
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

/// Tunable thresholds for the range analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RangeConfig {
    /// Fraction of a stage's output columns that may saturate before a
    /// `range/output-saturation` warning fires.
    pub saturation_warn_fraction: f64,
    /// Accumulator width of the target datapath in bits. The default (32)
    /// matches the `i32` MAC accumulators of `tpu_sim::SystolicArray` and
    /// the reference kernels in `hd_quant::gemm`.
    pub accumulator_bits: u32,
}

impl Default for RangeConfig {
    fn default() -> Self {
        RangeConfig {
            saturation_warn_fraction: 0.25,
            accumulator_bits: 32,
        }
    }
}

impl RangeConfig {
    /// The accumulator interval representable at
    /// [`RangeConfig::accumulator_bits`].
    #[must_use]
    pub fn accumulator_range(&self) -> Interval {
        if self.accumulator_bits >= 64 {
            return Interval::new(i64::MIN, i64::MAX);
        }
        let bits = self.accumulator_bits.max(2);
        let hi = (1i64 << (bits - 1)) - 1;
        Interval::new(-hi - 1, hi)
    }
}

/// The inferred value ranges of one quantized stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageRange {
    /// Index of the stage in execution order.
    pub stage_index: usize,
    /// Stable stage name (`"fully-connected"`,
    /// `"fully-connected-per-channel"` or `"lut"`).
    pub name: String,
    /// Quantized values entering the stage.
    pub input: Interval,
    /// Worst-case integer accumulator envelope (covering every prefix of
    /// the reduction) for GEMM stages; `None` for table lookups.
    pub accumulator: Option<Interval>,
    /// Quantized values leaving the stage.
    pub output: Interval,
    /// Fraction of output columns whose requantization can clip at the
    /// int8 rails for some reachable input (0.0 for table lookups).
    pub saturation_fraction: f64,
}

/// The outcome of a range-analysis pass: per-stage intervals plus every
/// finding, mirroring the shape of [`crate::verify::VerifyReport`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RangeReport {
    input: Interval,
    stages: Vec<StageRange>,
    diagnostics: Vec<Diagnostic>,
}

impl RangeReport {
    /// Quantized values entering the model (post input quantization,
    /// which saturates into the int8 range).
    pub fn input(&self) -> Interval {
        self.input
    }

    /// Per-stage inferred ranges, in execution order.
    pub fn stages(&self) -> &[StageRange] {
        &self.stages
    }

    /// All findings, in stage order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Error-severity findings only.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Whether any error-severity finding exists.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// Whether the model passed (warnings and notes allowed).
    pub fn is_ok(&self) -> bool {
        !self.has_errors()
    }
}

impl fmt::Display for RangeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        writeln!(f, "ranges: input q in {}", self.input)?;
        for s in &self.stages {
            write!(f, "ranges: stage {} {}: ", s.stage_index, s.name)?;
            if let Some(acc) = s.accumulator {
                write!(f, "acc in {acc}, ")?;
            }
            write!(f, "out q in {}", s.output)?;
            if s.saturation_fraction > 0.0 {
                write!(
                    f,
                    " ({:.0}% of columns can saturate)",
                    s.saturation_fraction * 100.0
                )?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Per-output-column accumulator bounds: the final-sum interval plus the
/// envelope of every reduction prefix.
struct ColumnBound {
    lo: i64,
    hi: i64,
    env_lo: i64,
    env_hi: i64,
}

fn column_bounds<'a>(
    rows: usize,
    cols: usize,
    weight_row: impl Fn(usize) -> &'a [i8],
    weight_zp: i64,
    av: Interval,
) -> Vec<ColumnBound> {
    let mut bounds: Vec<ColumnBound> = (0..cols)
        .map(|_| ColumnBound {
            lo: 0,
            hi: 0,
            env_lo: 0,
            env_hi: 0,
        })
        .collect();
    for p in 0..rows {
        let row = weight_row(p);
        for (b, &wq) in bounds.iter_mut().zip(row) {
            let w = i64::from(wq) - weight_zp;
            let x = av.lo * w;
            let y = av.hi * w;
            b.lo += x.min(y);
            b.hi += x.max(y);
            b.env_lo = b.env_lo.min(b.lo);
            b.env_hi = b.env_hi.max(b.hi);
        }
    }
    bounds
}

/// Whether requantizing the accumulator interval `[lo, hi]` at the real
/// scale `acc_scale` into `out` can clip at (or past) the int8 rails.
fn can_saturate(lo: i64, hi: i64, acc_scale: f64, out: QuantParams) -> bool {
    let raw = |acc: i64| {
        (acc_scale * acc as f64 / f64::from(out.scale())).round() + f64::from(out.zero_point())
    };
    raw(hi) > f64::from(QuantParams::QMAX) || raw(lo) < f64::from(QuantParams::QMIN)
}

fn lut_output(lut: &ActivationLut, input: Interval) -> Interval {
    // `apply` indexes `table[q - i8::MIN]`; the reachable indices are the
    // input interval shifted by 128, clamped defensively to the table.
    let lo_idx = (input.lo + 128).clamp(0, 255) as usize;
    let hi_idx = (input.hi + 128).clamp(lo_idx as i64, 255) as usize;
    let mut out_lo = i64::from(i8::MAX);
    let mut out_hi = i64::from(i8::MIN);
    for &v in &lut.table()[lo_idx..=hi_idx] {
        out_lo = out_lo.min(i64::from(v));
        out_hi = out_hi.max(i64::from(v));
    }
    Interval::new(out_lo, out_hi)
}

fn overflow_diag(index: usize, name: &str, env: Interval, config: &RangeConfig) -> Diagnostic {
    let datapath = config.accumulator_range();
    Diagnostic::error(
        "range/accumulator-overflow",
        format!(
            "stage {index} ({name}): worst-case accumulator range {env} exceeds the \
             {}-bit datapath accumulator {datapath}",
            config.accumulator_bits
        ),
    )
    .at_layer(index, name)
    .with_help(
        "narrow the calibration range, shrink the weights, or split the \
         reduction dimension so every partial sum fits the accumulator",
    )
}

fn saturation_diag(index: usize, name: &str, fraction: f64, config: &RangeConfig) -> Diagnostic {
    Diagnostic::warning(
        "range/output-saturation",
        format!(
            "stage {index} ({name}): {:.0}% of output columns can saturate int8 \
             requantization (warn threshold {:.0}%)",
            fraction * 100.0,
            config.saturation_warn_fraction * 100.0
        ),
    )
    .at_layer(index, name)
    .with_help(
        "the calibrated output range under-covers the worst case; widen the \
         calibration batch or rescale the layer's weights",
    )
}

fn dead_range_diag(index: usize, name: &str, output: Interval) -> Diagnostic {
    Diagnostic::warning(
        "range/dead-range",
        format!(
            "stage {index} ({name}): output is provably constant (q = {}) over the \
             whole input range; its quantization range is dead",
            output.lo
        ),
    )
    .at_layer(index, name)
    .with_help(
        "the stage contributes nothing at int8 precision — remove it or \
         increase its weight/output scales",
    )
}

/// One GEMM stage's transfer function, shared by the per-tensor and
/// per-channel variants. `scale_of` gives the per-column real accumulator
/// scale and `requant` maps `(column, accumulator)` through the concrete
/// executor's requantization path.
#[allow(clippy::too_many_arguments)]
fn gemm_stage(
    index: usize,
    name: &str,
    input: Interval,
    bounds: &[ColumnBound],
    out_params: QuantParams,
    scale_of: impl Fn(usize) -> f64,
    requant: impl Fn(usize, i64) -> i8,
    config: &RangeConfig,
    diags: &mut Vec<Diagnostic>,
) -> StageRange {
    let mut acc = Interval::ZERO;
    let mut out: Option<Interval> = None;
    let mut saturating = 0usize;
    for (j, b) in bounds.iter().enumerate() {
        acc = acc.join(&Interval::new(b.env_lo, b.env_hi));
        // Requantization is monotone in the accumulator, so the image of
        // the endpoints (evaluated with the executor's own f32 path)
        // bounds every concrete output.
        let col = Interval::new(i64::from(requant(j, b.lo)), i64::from(requant(j, b.hi)));
        out = Some(out.map_or(col, |o| o.join(&col)));
        if can_saturate(b.lo, b.hi, scale_of(j), out_params) {
            saturating += 1;
        }
    }
    let output = out.unwrap_or(Interval::ZERO);
    let fraction = if bounds.is_empty() {
        0.0
    } else {
        saturating as f64 / bounds.len() as f64
    };

    let datapath = config.accumulator_range();
    if acc.lo < datapath.lo || acc.hi > datapath.hi {
        diags.push(overflow_diag(index, name, acc, config));
    }
    if fraction >= config.saturation_warn_fraction && fraction > 0.0 {
        diags.push(saturation_diag(index, name, fraction, config));
    }
    if !bounds.is_empty() && output.is_singleton() && !input.is_singleton() {
        diags.push(dead_range_diag(index, name, output));
    }

    StageRange {
        stage_index: index,
        name: name.to_owned(),
        input,
        accumulator: Some(acc),
        output,
        saturation_fraction: fraction,
    }
}

/// Propagates value intervals through every stage of a quantized model
/// and reports numeric-safety findings.
///
/// The initial interval is the full int8 range: input quantization
/// saturates, so *every* real input lands inside it — the analysis is
/// sound for arbitrary inputs, not just calibration-shaped ones.
#[must_use]
pub fn analyze_ranges(model: &QuantizedModel, config: &RangeConfig) -> RangeReport {
    let input = Interval::I8;
    let mut cur = input;
    let mut cur_params = model.input_params();
    let mut stages = Vec::with_capacity(model.stages().len());
    let mut diagnostics = Vec::new();

    for (i, stage) in model.stages().iter().enumerate() {
        let sr = match stage {
            QuantStage::FullyConnected {
                weights,
                out_params,
            } => {
                let za = i64::from(cur_params.zero_point());
                let av = Interval::new(cur.lo - za, cur.hi - za);
                let zb = i64::from(weights.params().zero_point());
                let bounds =
                    column_bounds(weights.rows(), weights.cols(), |p| weights.row(p), zb, av);
                // Same combined scale the kernel computes.
                let acc_scale = cur_params.scale() * weights.params().scale();
                let sr = gemm_stage(
                    i,
                    "fully-connected",
                    cur,
                    &bounds,
                    *out_params,
                    |_| f64::from(acc_scale),
                    |_, a| requant_saturating(*out_params, a, acc_scale),
                    config,
                    &mut diagnostics,
                );
                cur_params = *out_params;
                sr
            }
            QuantStage::FullyConnectedPerChannel {
                weights,
                out_params,
            } => {
                let za = i64::from(cur_params.zero_point());
                let av = Interval::new(cur.lo - za, cur.hi - za);
                let sa = cur_params.scale();
                let scales = weights.scales().to_vec();
                let bounds =
                    column_bounds(weights.rows(), weights.cols(), |p| weights.row(p), 0, av);
                let sr = gemm_stage(
                    i,
                    "fully-connected-per-channel",
                    cur,
                    &bounds,
                    *out_params,
                    |j| f64::from(sa) * f64::from(scales[j]),
                    // Mirror `ChannelQuantizedMatrix::matmul_dequantized`
                    // followed by `QuantizedMatrix::quantize`.
                    |j, a| out_params.quantize(sa * scales[j] * clamp_to_f32(a)),
                    config,
                    &mut diagnostics,
                );
                cur_params = *out_params;
                sr
            }
            QuantStage::Lut(lut) => {
                let output = lut_output(lut, cur);
                if output.is_singleton() && !cur.is_singleton() {
                    diagnostics.push(dead_range_diag(i, "lut", output));
                }
                cur_params = lut.output_params();
                StageRange {
                    stage_index: i,
                    name: "lut".to_owned(),
                    input: cur,
                    accumulator: None,
                    output,
                    saturation_fraction: 0.0,
                }
            }
        };
        cur = sr.output;
        stages.push(sr);
    }

    RangeReport {
        input,
        stages,
        diagnostics,
    }
}

/// The executor's requantization applied to a (possibly out-of-`i32`)
/// static bound: saturate into the accumulator range first, exactly like
/// the hardened `tpu-sim` datapath, then follow the concrete f32 path.
/// For models that pass the overflow check the saturation never engages,
/// so this is bit-identical to `requantize_accumulator`.
fn requant_saturating(out: QuantParams, acc: i64, acc_scale: f32) -> i8 {
    let acc32 = hd_quant::narrow::saturate_i64_to_i32(acc);
    out.requantize_accumulator(acc32, acc_scale)
}

/// `i64 -> f32` via the same monotone conversion the executor performs on
/// its `i32` accumulators (identical for all in-range values).
fn clamp_to_f32(acc: i64) -> f32 {
    hd_quant::narrow::saturate_i64_to_i32(acc) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;
    use crate::layer::Activation;
    use hd_tensor::rng::DetRng;
    use hd_tensor::Matrix;

    fn quantized(n: usize, d: usize, k: usize, seed: u64) -> QuantizedModel {
        let mut rng = DetRng::new(seed);
        let model = ModelBuilder::new(n)
            .fully_connected(Matrix::random_normal(n, d, &mut rng))
            .unwrap()
            .activation(Activation::Tanh)
            .fully_connected(Matrix::random_normal(d, k, &mut rng))
            .unwrap()
            .build()
            .unwrap();
        let calibration = Matrix::random_normal(16, n, &mut rng);
        QuantizedModel::quantize(&model, &calibration).unwrap()
    }

    #[test]
    fn interval_ops() {
        let a = Interval::new(3, -2);
        assert_eq!(a, Interval::new(-2, 3));
        assert!(a.contains(0));
        assert!(!a.contains(4));
        assert!(!a.is_singleton());
        assert!(Interval::ZERO.is_singleton());
        assert_eq!(a.join(&Interval::new(5, 7)), Interval::new(-2, 7));
        assert_eq!(Interval::new(-2, 3).to_string(), "[-2, 3]");
    }

    #[test]
    fn accumulator_range_matches_i32() {
        let c = RangeConfig::default();
        let r = c.accumulator_range();
        assert_eq!(r.lo, i64::from(i32::MIN));
        assert_eq!(r.hi, i64::from(i32::MAX));
    }

    #[test]
    fn small_model_is_clean_and_fully_ranged() {
        let q = quantized(8, 16, 4, 7);
        let report = analyze_ranges(&q, &RangeConfig::default());
        assert!(report.is_ok(), "{report}");
        assert_eq!(report.stages().len(), 3);
        assert_eq!(report.input(), Interval::I8);
        // FC stages carry accumulator envelopes, the LUT does not.
        assert!(report.stages()[0].accumulator.is_some());
        assert!(report.stages()[1].accumulator.is_none());
        assert!(report.stages()[2].accumulator.is_some());
        for s in report.stages() {
            assert!(s.output.lo >= -128 && s.output.hi <= 127, "{s:?}");
        }
    }

    #[test]
    fn intervals_thread_between_stages() {
        let q = quantized(8, 16, 4, 9);
        let report = analyze_ranges(&q, &RangeConfig::default());
        for pair in report.stages().windows(2) {
            assert_eq!(pair[1].input, pair[0].output);
        }
    }

    #[test]
    fn narrow_accumulator_budget_triggers_overflow() {
        let q = quantized(32, 16, 4, 11);
        let tight = RangeConfig {
            accumulator_bits: 16,
            ..RangeConfig::default()
        };
        let report = analyze_ranges(&q, &tight);
        assert!(report.has_errors());
        assert!(report
            .errors()
            .all(|d| d.code == "range/accumulator-overflow"));
    }

    #[test]
    fn report_renders_stage_lines() {
        let q = quantized(4, 8, 2, 13);
        let report = analyze_ranges(&q, &RangeConfig::default());
        let text = report.to_string();
        assert!(text.contains("ranges: input q in [-128, 127]"), "{text}");
        assert!(text.contains("stage 0 fully-connected"), "{text}");
        assert!(text.contains("stage 1 lut"), "{text}");
    }
}
