use serde::{Deserialize, Serialize};

use hd_tensor::{gemm, Matrix};

use crate::error::NnError;
use crate::layer::Layer;
use crate::Result;

/// A validated feed-forward wide NN: an ordered list of layers with
/// consistent shapes.
///
/// Construct through [`ModelBuilder`](crate::ModelBuilder) (which performs
/// shape inference) or [`Model::new`].
///
/// # Examples
///
/// ```
/// use hd_tensor::Matrix;
/// use wide_nn::{Activation, Layer, Model};
///
/// # fn main() -> Result<(), wide_nn::NnError> {
/// let model = Model::new(
///     2,
///     vec![
///         Layer::FullyConnected { weights: Matrix::identity(2) },
///         Layer::Activation(Activation::Relu),
///     ],
/// )?;
/// let out = model.forward(&Matrix::from_rows(&[&[-1.0, 3.0]])?)?;
/// assert_eq!(out.row(0), &[0.0, 3.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Model {
    input_dim: usize,
    output_dim: usize,
    layers: Vec<Layer>,
}

impl Model {
    /// Creates a model after validating the layer chain with shape
    /// inference.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyModel`] for an empty layer list and
    /// [`NnError::ShapeInference`] at the first incompatible layer.
    pub fn new(input_dim: usize, layers: Vec<Layer>) -> Result<Self> {
        if layers.is_empty() {
            return Err(NnError::EmptyModel);
        }
        let mut dim = input_dim;
        for (i, layer) in layers.iter().enumerate() {
            dim = layer.output_dim(dim).ok_or_else(|| {
                let actual = match layer {
                    Layer::FullyConnected { weights } => weights.rows(),
                    _ => dim,
                };
                NnError::ShapeInference {
                    layer: i,
                    expected: dim,
                    actual,
                }
            })?;
        }
        Ok(Model {
            input_dim,
            output_dim: dim,
            layers,
        })
    }

    /// The feature width this model consumes.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// The width this model produces.
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    /// The validated layers in execution order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Total float parameter count.
    pub fn param_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| match l {
                Layer::FullyConnected { weights } => weights.len(),
                _ => 0,
            })
            .sum()
    }

    /// Multiply-accumulate operations per input row — the workload number
    /// the runtime models consume.
    pub fn macs_per_row(&self) -> u64 {
        self.layers.iter().map(Layer::macs_per_row).sum()
    }

    /// Runs the model on a batch (`rows = samples`), in `f32`.
    ///
    /// This is the float reference path — the "CPU baseline" arithmetic of
    /// the paper (the host runs HDC in full precision).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputDim`] if the batch width differs from
    /// [`Model::input_dim`]. Element-wise training layers are rejected with
    /// [`NnError::UnsupportedOp`] because they need a second operand that
    /// inference-style execution does not carry.
    pub fn forward(&self, batch: &Matrix) -> Result<Matrix> {
        if batch.cols() != self.input_dim {
            return Err(NnError::InputDim {
                expected: self.input_dim,
                actual: batch.cols(),
            });
        }
        let mut current = batch.clone();
        for layer in &self.layers {
            current = match layer {
                Layer::FullyConnected { weights } => gemm::matmul(&current, weights)?,
                Layer::Activation(act) => {
                    let a = *act;
                    current.map(|v| a.eval(v))
                }
                Layer::Elementwise { op, .. } => {
                    return Err(NnError::UnsupportedOp {
                        op: op.name(),
                        target: "float forward (inference)".into(),
                    })
                }
            };
        }
        Ok(current)
    }

    /// Runs the model and additionally returns every intermediate
    /// activation (the input to each layer plus the final output). Used by
    /// post-training quantization to calibrate per-tensor ranges.
    ///
    /// # Errors
    ///
    /// Same as [`Model::forward`].
    pub fn forward_with_intermediates(&self, batch: &Matrix) -> Result<Vec<Matrix>> {
        if batch.cols() != self.input_dim {
            return Err(NnError::InputDim {
                expected: self.input_dim,
                actual: batch.cols(),
            });
        }
        let mut tensors = Vec::with_capacity(self.layers.len() + 1);
        tensors.push(batch.clone());
        for layer in &self.layers {
            let prev = tensors.last().expect("at least the input is present");
            let next = match layer {
                Layer::FullyConnected { weights } => gemm::matmul(prev, weights)?,
                Layer::Activation(act) => {
                    let a = *act;
                    prev.map(|v| a.eval(v))
                }
                Layer::Elementwise { op, .. } => {
                    return Err(NnError::UnsupportedOp {
                        op: op.name(),
                        target: "float forward (inference)".into(),
                    })
                }
            };
            tensors.push(next);
        }
        Ok(tensors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Activation;
    use hd_tensor::rng::DetRng;

    fn two_layer_model() -> Model {
        let mut rng = DetRng::new(3);
        let w1 = Matrix::random_normal(4, 16, &mut rng);
        let w2 = Matrix::random_normal(16, 3, &mut rng);
        Model::new(
            4,
            vec![
                Layer::FullyConnected { weights: w1 },
                Layer::Activation(Activation::Tanh),
                Layer::FullyConnected { weights: w2 },
            ],
        )
        .unwrap()
    }

    #[test]
    fn shape_inference_accepts_valid_chain() {
        let m = two_layer_model();
        assert_eq!(m.input_dim(), 4);
        assert_eq!(m.output_dim(), 3);
        assert_eq!(m.layers().len(), 3);
    }

    #[test]
    fn shape_inference_rejects_mismatch() {
        let err = Model::new(
            4,
            vec![Layer::FullyConnected {
                weights: Matrix::zeros(5, 2),
            }],
        )
        .unwrap_err();
        assert_eq!(
            err,
            NnError::ShapeInference {
                layer: 0,
                expected: 4,
                actual: 5
            }
        );
    }

    #[test]
    fn empty_model_rejected() {
        assert_eq!(Model::new(4, vec![]).unwrap_err(), NnError::EmptyModel);
    }

    #[test]
    fn forward_matches_manual_computation() {
        let m = Model::new(
            2,
            vec![
                Layer::FullyConnected {
                    weights: Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0]]).unwrap(),
                },
                Layer::Activation(Activation::Tanh),
            ],
        )
        .unwrap();
        let out = m
            .forward(&Matrix::from_rows(&[&[2.0, 3.0]]).unwrap())
            .unwrap();
        assert!((out[(0, 0)] - 5.0f32.tanh()).abs() < 1e-6);
        assert!((out[(0, 1)] - 3.0f32.tanh()).abs() < 1e-6);
    }

    #[test]
    fn forward_rejects_wrong_input_width() {
        let m = two_layer_model();
        let err = m.forward(&Matrix::zeros(1, 5)).unwrap_err();
        assert_eq!(
            err,
            NnError::InputDim {
                expected: 4,
                actual: 5
            }
        );
    }

    #[test]
    fn forward_rejects_elementwise_layers() {
        let m = Model::new(
            2,
            vec![Layer::Elementwise {
                op: crate::layer::ElementwiseOp::ScaledAdd,
                lambda: 0.5,
            }],
        )
        .unwrap();
        assert!(matches!(
            m.forward(&Matrix::zeros(1, 2)).unwrap_err(),
            NnError::UnsupportedOp { .. }
        ));
    }

    #[test]
    fn intermediates_have_one_tensor_per_layer_plus_input() {
        let m = two_layer_model();
        let batch = Matrix::zeros(2, 4);
        let tensors = m.forward_with_intermediates(&batch).unwrap();
        assert_eq!(tensors.len(), 4);
        assert_eq!(tensors[0].shape(), (2, 4));
        assert_eq!(tensors[3].shape(), (2, 3));
    }

    #[test]
    fn intermediates_final_matches_forward() {
        let m = two_layer_model();
        let mut rng = DetRng::new(4);
        let batch = Matrix::random_normal(3, 4, &mut rng);
        let direct = m.forward(&batch).unwrap();
        let tensors = m.forward_with_intermediates(&batch).unwrap();
        assert_eq!(tensors.last().unwrap(), &direct);
    }

    #[test]
    fn param_and_mac_counts() {
        let m = two_layer_model();
        assert_eq!(m.param_count(), 4 * 16 + 16 * 3);
        assert_eq!(m.macs_per_row(), (4 * 16 + 16 * 3) as u64);
    }

    #[test]
    fn batch_forward_is_rowwise_independent() {
        let m = two_layer_model();
        let mut rng = DetRng::new(5);
        let batch = Matrix::random_normal(4, 4, &mut rng);
        let full = m.forward(&batch).unwrap();
        for r in 0..4 {
            let single = m.forward(&batch.slice_rows(r, r + 1).unwrap()).unwrap();
            for c in 0..3 {
                assert!((full[(r, c)] - single[(0, c)]).abs() < 1e-5);
            }
        }
    }
}
