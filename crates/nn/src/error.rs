use std::error::Error;
use std::fmt;

use hd_quant::QuantError;
use hd_tensor::TensorError;

use crate::diag::Diagnostic;

/// Error type for model construction, execution, serialization and
/// compilation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NnError {
    /// A layer's input dimension does not match the previous layer's
    /// output dimension.
    ShapeInference {
        /// Zero-based index of the offending layer.
        layer: usize,
        /// Dimension flowing out of the previous layer.
        expected: usize,
        /// Dimension the layer actually accepts.
        actual: usize,
    },
    /// A model must contain at least one layer.
    EmptyModel,
    /// Input batch has the wrong feature width for this model.
    InputDim {
        /// The model's input dimension.
        expected: usize,
        /// Feature width of the batch that was supplied.
        actual: usize,
    },
    /// The target accelerator cannot execute this operation.
    ///
    /// This is the typed form of the paper's observation that "Edge TPU
    /// lacks the support for element-wise operations, so the acceleration
    /// for class hypervectors update is not available": lowering a model
    /// containing an element-wise update op fails with this error, and the
    /// framework responds by scheduling that stage on the host CPU.
    UnsupportedOp {
        /// Name of the rejected operation.
        op: &'static str,
        /// Name of the compilation target.
        target: String,
    },
    /// The model's parameters exceed the target's on-chip buffer.
    ModelTooLarge {
        /// Bytes required by the model parameters.
        required: usize,
        /// Bytes available in the target's parameter buffer.
        available: usize,
    },
    /// A compilation target was described with invalid parameters.
    InvalidTarget(String),
    /// The static model-graph verifier rejected the model.
    ///
    /// Carries every error-severity [`Diagnostic`] the verifier produced,
    /// so callers can render the full structured report instead of one
    /// opaque message.
    Verification {
        /// Error-severity findings from [`crate::verify::verify_graph`].
        diagnostics: Vec<Diagnostic>,
    },
    /// Malformed or truncated serialized model data.
    Serialization(String),
    /// An internal invariant was violated. Seeing this error is a bug in
    /// the library, but hot paths propagate it instead of aborting the
    /// whole training/inference run.
    Internal(String),
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// An underlying quantization operation failed.
    Quant(QuantError),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::ShapeInference {
                layer,
                expected,
                actual,
            } => write!(
                f,
                "shape inference failed at layer {layer}: expected input dim {expected}, layer accepts {actual}"
            ),
            NnError::EmptyModel => write!(f, "model contains no layers"),
            NnError::InputDim { expected, actual } => {
                write!(f, "input has {actual} features, model expects {expected}")
            }
            NnError::UnsupportedOp { op, target } => {
                write!(f, "operation {op} is not supported by target {target}")
            }
            NnError::ModelTooLarge {
                required,
                available,
            } => write!(
                f,
                "model parameters need {required} bytes, target buffer holds {available}"
            ),
            NnError::InvalidTarget(msg) => write!(f, "invalid target spec: {msg}"),
            NnError::Verification { diagnostics } => {
                write!(f, "model verification failed with {} error(s)", diagnostics.len())?;
                for d in diagnostics {
                    write!(f, "\n{d}")?;
                }
                Ok(())
            }
            NnError::Serialization(msg) => write!(f, "serialization error: {msg}"),
            NnError::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::Quant(e) => write!(f, "quantization error: {e}"),
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            NnError::Quant(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

impl From<QuantError> for NnError {
    fn from(e: QuantError) -> Self {
        NnError::Quant(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = NnError::ShapeInference {
            layer: 1,
            expected: 10,
            actual: 12,
        };
        assert!(e.to_string().contains("layer 1"));
        assert!(NnError::EmptyModel.to_string().contains("no layers"));
        let e = NnError::UnsupportedOp {
            op: "elementwise-add",
            target: "tpu-sim".into(),
        };
        assert!(e.to_string().contains("elementwise-add"));
        let e = NnError::ModelTooLarge {
            required: 100,
            available: 50,
        };
        assert!(e.to_string().contains("100"));
    }

    #[test]
    fn sources_chain() {
        let e: NnError = TensorError::EmptyDimension { op: "x" }.into();
        assert!(e.source().is_some());
        let e: NnError = QuantError::EmptyCalibration.into();
        assert!(e.source().is_some());
        assert!(NnError::EmptyModel.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
