use serde::{Deserialize, Serialize};

use hd_tensor::Matrix;

/// Scalar activation functions available to the wide NN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// Hyperbolic tangent — the paper's non-linear encoding activation.
    Tanh,
    /// Rectified linear unit.
    Relu,
    /// Pass-through (requantization only on int8 paths).
    Identity,
}

impl Activation {
    /// Evaluates the activation on a real value.
    pub fn eval(self, v: f32) -> f32 {
        match self {
            Activation::Tanh => v.tanh(),
            Activation::Relu => v.max(0.0),
            Activation::Identity => v,
        }
    }

    /// Stable name used by serialization and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Activation::Tanh => "tanh",
            Activation::Relu => "relu",
            Activation::Identity => "identity",
        }
    }
}

/// Element-wise binary operations.
///
/// These represent the *training-side* computations (class-hypervector
/// bundling/detaching). They exist in the IR so that a caller can attempt
/// to lower the full training graph to an accelerator and receive a typed
/// [`NnError::UnsupportedOp`](crate::NnError::UnsupportedOp) — mirroring
/// the paper's finding that the Edge TPU cannot run them, which is why its
/// framework keeps the update step on the host CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ElementwiseOp {
    /// `y += lambda * x` — bundling.
    ScaledAdd,
    /// `y -= lambda * x` — detaching.
    ScaledSub,
}

impl ElementwiseOp {
    /// Stable name used by diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            ElementwiseOp::ScaledAdd => "elementwise-scaled-add",
            ElementwiseOp::ScaledSub => "elementwise-scaled-sub",
        }
    }
}

/// One layer of the wide NN.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Layer {
    /// Dense layer: output `(batch x out) = input (batch x in) * weights
    /// (in x out)`. No bias — HDC encoding and similarity search are pure
    /// matrix products.
    FullyConnected {
        /// The `in x out` weight matrix.
        weights: Matrix,
    },
    /// Element-wise activation applied to the previous layer's output.
    Activation(Activation),
    /// Element-wise training op; supported on hosts, rejected by
    /// accelerator targets.
    Elementwise {
        /// Which element-wise operation.
        op: ElementwiseOp,
        /// The scalar coefficient (the HDC learning rate `lambda`).
        lambda: f32,
    },
}

impl Layer {
    /// Output width given an input width, or `None` if the layer cannot
    /// accept that width.
    pub fn output_dim(&self, input_dim: usize) -> Option<usize> {
        match self {
            Layer::FullyConnected { weights } => {
                (weights.rows() == input_dim).then(|| weights.cols())
            }
            Layer::Activation(_) | Layer::Elementwise { .. } => Some(input_dim),
        }
    }

    /// Parameter bytes this layer contributes to an int8-compiled model.
    pub fn quantized_param_bytes(&self) -> usize {
        match self {
            Layer::FullyConnected { weights } => weights.len(),
            Layer::Activation(_) => 256, // the activation LUT
            Layer::Elementwise { .. } => 0,
        }
    }

    /// Number of multiply-accumulate operations this layer performs for a
    /// single input row. Drives both the host and accelerator runtime
    /// models.
    pub fn macs_per_row(&self) -> u64 {
        match self {
            Layer::FullyConnected { weights } => (weights.rows() * weights.cols()) as u64,
            Layer::Activation(_) | Layer::Elementwise { .. } => 0,
        }
    }

    /// Stable name used by diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            Layer::FullyConnected { .. } => "fully-connected",
            Layer::Activation(_) => "activation",
            Layer::Elementwise { .. } => "elementwise",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_eval() {
        assert_eq!(Activation::Relu.eval(-2.0), 0.0);
        assert_eq!(Activation::Relu.eval(2.0), 2.0);
        assert_eq!(Activation::Identity.eval(-3.5), -3.5);
        assert!((Activation::Tanh.eval(0.5) - 0.5f32.tanh()).abs() < 1e-7);
    }

    #[test]
    fn fc_output_dim_checks_input() {
        let layer = Layer::FullyConnected {
            weights: Matrix::zeros(4, 9),
        };
        assert_eq!(layer.output_dim(4), Some(9));
        assert_eq!(layer.output_dim(5), None);
    }

    #[test]
    fn pointwise_layers_preserve_dim() {
        assert_eq!(Layer::Activation(Activation::Tanh).output_dim(7), Some(7));
        let ew = Layer::Elementwise {
            op: ElementwiseOp::ScaledAdd,
            lambda: 1.0,
        };
        assert_eq!(ew.output_dim(7), Some(7));
    }

    #[test]
    fn macs_counted_only_for_fc() {
        let fc = Layer::FullyConnected {
            weights: Matrix::zeros(10, 20),
        };
        assert_eq!(fc.macs_per_row(), 200);
        assert_eq!(Layer::Activation(Activation::Tanh).macs_per_row(), 0);
    }

    #[test]
    fn quantized_bytes() {
        let fc = Layer::FullyConnected {
            weights: Matrix::zeros(3, 5),
        };
        assert_eq!(fc.quantized_param_bytes(), 15);
        assert_eq!(
            Layer::Activation(Activation::Tanh).quantized_param_bytes(),
            256
        );
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Activation::Tanh.name(), "tanh");
        assert_eq!(ElementwiseOp::ScaledAdd.name(), "elementwise-scaled-add");
        assert_eq!(
            Layer::FullyConnected {
                weights: Matrix::zeros(1, 1)
            }
            .name(),
            "fully-connected"
        );
    }
}
