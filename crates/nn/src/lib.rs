//! Wide fully-connected neural network IR, quantized execution,
//! serialization, and an accelerator compiler.
//!
//! The paper's central trick is to interpret the HDC model as a
//! *three-layer hyper-wide neural network*: the `n x d` base-hypervector
//! matrix becomes the first fully-connected layer, `tanh` the hidden
//! activation, and the `d x k` class-hypervector matrix the output layer.
//! That interpretation is what lets a stock DNN inference accelerator run
//! HDC. This crate is the model-format-and-compiler half of that story —
//! the stand-in for TensorFlow Lite plus the Edge TPU compiler:
//!
//! * [`Model`] / [`ModelBuilder`] — the float model graph with shape
//!   inference,
//! * [`QuantizedModel`] — post-training int8 quantization and the
//!   reference int8 executor (bit-identical to the `tpu-sim` datapath),
//! * [`absint`] — interval abstract interpretation proving the int8
//!   datapath cannot overflow its i32 accumulators,
//! * [`serialize`] — a compact binary `.wnn` container,
//! * [`compile`] — lowering to an accelerator tile program, including the
//!   *unsupported-op* diagnostics that force the paper's class-hypervector
//!   update onto the host CPU.
//!
//! # Examples
//!
//! Building the paper's encoder half (inputs -> wide hidden layer):
//!
//! ```
//! use hd_tensor::{rng::DetRng, Matrix};
//! use wide_nn::{Activation, ModelBuilder};
//!
//! # fn main() -> Result<(), wide_nn::NnError> {
//! let mut rng = DetRng::new(7);
//! let base = Matrix::random_normal(64, 512, &mut rng); // n x d
//! let encoder = ModelBuilder::new(64)
//!     .fully_connected(base)?
//!     .activation(Activation::Tanh)
//!     .build()?;
//! assert_eq!(encoder.output_dim(), 512);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod error;
mod layer;
mod model;
mod quantized;

pub mod absint;
pub mod compile;
pub mod diag;
pub mod serialize;
pub mod verify;

pub use absint::{analyze_ranges, Interval, RangeConfig, RangeReport, StageRange};
pub use builder::ModelBuilder;
pub use compile::{CompiledModel, TargetSpec, TilePlan};
pub use diag::{Diagnostic, Severity, Site};
pub use error::NnError;
pub use layer::{Activation, ElementwiseOp, Layer};
pub use model::Model;
pub use quantized::{QuantStage, QuantizedModel};
pub use verify::{verify_graph, verify_model, verify_ranges, VerifyReport};

/// Convenience result alias for fallible model operations.
pub type Result<T> = std::result::Result<T, NnError>;
