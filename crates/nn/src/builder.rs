use hd_tensor::Matrix;

use crate::error::NnError;
use crate::layer::{Activation, ElementwiseOp, Layer};
use crate::model::Model;
use crate::Result;

/// Incremental, shape-checked construction of a [`Model`].
///
/// Each `fully_connected` call is validated against the running output
/// width immediately, so errors point at the exact offending layer.
///
/// # Examples
///
/// The paper's full three-layer wide network (encode + classify):
///
/// ```
/// use hd_tensor::{rng::DetRng, Matrix};
/// use wide_nn::{Activation, ModelBuilder};
///
/// # fn main() -> Result<(), wide_nn::NnError> {
/// let mut rng = DetRng::new(1);
/// let base = Matrix::random_normal(32, 256, &mut rng); // n x d
/// let class = Matrix::random_normal(256, 4, &mut rng); // d x k
/// let model = ModelBuilder::new(32)
///     .fully_connected(base)?
///     .activation(Activation::Tanh)
///     .fully_connected(class)?
///     .build()?;
/// assert_eq!(model.output_dim(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ModelBuilder {
    input_dim: usize,
    current_dim: usize,
    layers: Vec<Layer>,
}

impl ModelBuilder {
    /// Starts a model that consumes `input_dim` features per sample.
    #[must_use]
    pub fn new(input_dim: usize) -> Self {
        ModelBuilder {
            input_dim,
            current_dim: input_dim,
            layers: Vec::new(),
        }
    }

    /// Appends a dense layer with the given `in x out` weights.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeInference`] if `weights.rows()` differs from
    /// the current output width.
    pub fn fully_connected(mut self, weights: Matrix) -> Result<Self> {
        if weights.rows() != self.current_dim {
            return Err(NnError::ShapeInference {
                layer: self.layers.len(),
                expected: self.current_dim,
                actual: weights.rows(),
            });
        }
        self.current_dim = weights.cols();
        self.layers.push(Layer::FullyConnected { weights });
        Ok(self)
    }

    /// Appends an element-wise activation layer.
    #[must_use]
    pub fn activation(mut self, act: Activation) -> Self {
        self.layers.push(Layer::Activation(act));
        self
    }

    /// Appends an element-wise training op (bundling/detaching). Compiling
    /// the resulting model for an accelerator target fails with
    /// [`NnError::UnsupportedOp`], which is precisely how the framework
    /// discovers that class-hypervector update must stay on the host.
    #[must_use]
    pub fn elementwise(mut self, op: ElementwiseOp, lambda: f32) -> Self {
        self.layers.push(Layer::Elementwise { op, lambda });
        self
    }

    /// Current output width of the partially built model.
    pub fn current_dim(&self) -> usize {
        self.current_dim
    }

    /// Finalizes the model.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyModel`] if no layer was added.
    pub fn build(self) -> Result<Model> {
        Model::new(self.input_dim, self.layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_dimensions() {
        let b = ModelBuilder::new(8);
        assert_eq!(b.current_dim(), 8);
        let b = b.fully_connected(Matrix::zeros(8, 20)).unwrap();
        assert_eq!(b.current_dim(), 20);
        let b = b.activation(Activation::Tanh);
        assert_eq!(b.current_dim(), 20);
    }

    #[test]
    fn builder_rejects_wrong_rows_immediately() {
        let err = ModelBuilder::new(8)
            .fully_connected(Matrix::zeros(9, 20))
            .unwrap_err();
        assert_eq!(
            err,
            NnError::ShapeInference {
                layer: 0,
                expected: 8,
                actual: 9
            }
        );
    }

    #[test]
    fn error_reports_later_layer_index() {
        let err = ModelBuilder::new(8)
            .fully_connected(Matrix::zeros(8, 4))
            .unwrap()
            .activation(Activation::Relu)
            .fully_connected(Matrix::zeros(5, 2))
            .unwrap_err();
        assert_eq!(
            err,
            NnError::ShapeInference {
                layer: 2,
                expected: 4,
                actual: 5
            }
        );
    }

    #[test]
    fn empty_build_fails() {
        assert_eq!(
            ModelBuilder::new(4).build().unwrap_err(),
            NnError::EmptyModel
        );
    }

    #[test]
    fn built_model_matches_layer_sequence() {
        let model = ModelBuilder::new(2)
            .fully_connected(Matrix::identity(2))
            .unwrap()
            .activation(Activation::Relu)
            .elementwise(ElementwiseOp::ScaledAdd, 0.1)
            .build()
            .unwrap();
        assert_eq!(model.layers().len(), 3);
        assert_eq!(model.output_dim(), 2);
    }
}
