//! Static model-graph verification.
//!
//! The Edge TPU toolchain validates a model *before* anything touches the
//! device: unsupported ops, over-capacity parameter buffers and malformed
//! graphs are rejected at compile time, and that rejection is what drives
//! the paper's host/device work partitioning. This pass is the
//! machine-checked form of that contract: it walks a layer stack without
//! executing or quantizing anything and reports every problem it can prove
//! as a structured [`Diagnostic`] — no panics, no early exit on the first
//! finding.
//!
//! Checks performed:
//!
//! * **Shape inference** (`verify/shape-mismatch`, `verify/zero-dim`,
//!   `verify/empty-model`) — layer input widths must chain; zero-sized
//!   weight matrices are rejected.
//! * **Value/dtype inference** (`verify/non-finite-weight`) — NaN or
//!   infinite weights can never be quantized to int8.
//! * **Dead-layer detection** (`verify/dead-layer`) — identity
//!   activations, all-zero weight matrices and `lambda == 0` element-wise
//!   ops contribute nothing.
//! * **Placement validation** (`verify/op-placement`,
//!   `verify/host-only-model`, `verify/placement-boundary`) — element-wise
//!   training ops cannot run on the accelerator; a graph with no
//!   device-placeable op has nothing to accelerate; every host/device
//!   transition costs a requantization boundary.
//! * **Capacity pre-check** (`verify/over-capacity`) — estimated int8
//!   parameter bytes must fit the target's buffer; the diagnostic suggests
//!   a concrete column split for the largest layer.
//!
//! A second, *numeric* verification stage — [`verify_ranges`] — runs on
//! the already-quantized model: it propagates value intervals through
//! every stage (see [`crate::absint`]) and reports accumulator-overflow,
//! output-saturation and dead-range findings against the accelerator
//! datapath.

use crate::absint::{self, RangeConfig, RangeReport};
use crate::compile::TargetSpec;
use crate::diag::{Diagnostic, Severity};
use crate::layer::{Activation, Layer};
use crate::model::Model;
use crate::quantized::QuantizedModel;

/// Numeric representation of a tensor flowing between layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// 32-bit float (host arithmetic).
    F32,
    /// 8-bit signed integer (accelerator arithmetic).
    I8,
}

impl DType {
    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            DType::F32 => "f32",
            DType::I8 => "i8",
        }
    }
}

/// Where a layer executes in the co-designed pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Placement {
    /// Runs on the accelerator (int8 datapath).
    Device,
    /// Runs on the host CPU (f32 datapath).
    Host,
}

impl Placement {
    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            Placement::Device => "device",
            Placement::Host => "host",
        }
    }
}

/// Inferred facts about one layer of a verified graph.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerPlan {
    /// Zero-based index in execution order.
    pub index: usize,
    /// Stable layer name.
    pub name: &'static str,
    /// Inferred input width.
    pub input_dim: usize,
    /// Inferred output width.
    pub output_dim: usize,
    /// Numeric type the layer computes in under this placement.
    pub dtype: DType,
    /// Where the layer executes.
    pub placement: Placement,
    /// Estimated int8 parameter bytes the layer occupies on the device.
    pub param_bytes: usize,
}

/// The outcome of a verification pass: every finding plus the inferred
/// per-layer plan.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct VerifyReport {
    diagnostics: Vec<Diagnostic>,
    layers: Vec<LayerPlan>,
    param_bytes_required: usize,
}

impl VerifyReport {
    /// All findings, in graph order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Error-severity findings only.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Whether any error-severity finding exists.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// Whether the graph passed (no errors; warnings and notes allowed).
    pub fn is_ok(&self) -> bool {
        !self.has_errors()
    }

    /// The inferred per-layer plan (empty if shape inference failed).
    pub fn layers(&self) -> &[LayerPlan] {
        &self.layers
    }

    /// Estimated device parameter bytes for the whole graph.
    pub fn param_bytes_required(&self) -> usize {
        self.param_bytes_required
    }

    fn push(&mut self, diag: Diagnostic) {
        self.diagnostics.push(diag);
    }
}

impl std::fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

/// Verifies a validated [`Model`] against a target.
///
/// Equivalent to [`verify_graph`] over the model's layers.
pub fn verify_model(model: &Model, target: &TargetSpec) -> VerifyReport {
    verify_graph(model.input_dim(), model.layers(), target)
}

/// Verifies the numeric safety of a quantized model by interval abstract
/// interpretation — the range-analysis counterpart of [`verify_model`].
///
/// Delegates to [`crate::absint::analyze_ranges`]; see the module docs
/// there for the domain, the transfer functions and the emitted
/// diagnostic codes.
#[must_use]
pub fn verify_ranges(model: &QuantizedModel, config: &RangeConfig) -> RangeReport {
    absint::analyze_ranges(model, config)
}

/// Verifies a raw layer stack against a target, without requiring the
/// stack to already form a valid [`Model`].
///
/// Never panics: every problem becomes a [`Diagnostic`] in the returned
/// report. Shape inference continues past a mismatch (assuming the layer's
/// own output width) so one pass reports every issue.
pub fn verify_graph(input_dim: usize, layers: &[Layer], target: &TargetSpec) -> VerifyReport {
    let mut report = VerifyReport::default();

    if layers.is_empty() {
        report.push(
            Diagnostic::error("verify/empty-model", "model contains no layers")
                .with_help("add at least one layer before compiling"),
        );
        return report;
    }
    if input_dim == 0 {
        report.push(Diagnostic::error(
            "verify/zero-dim",
            "model input width is zero",
        ));
    }

    let mut dim = input_dim;
    let mut device_layers = 0usize;
    let mut prev_placement: Option<Placement> = None;
    for (index, layer) in layers.iter().enumerate() {
        let name = layer.name();

        // Shape inference. On mismatch, report and re-anchor on the
        // layer's own output width so downstream layers still get checked.
        let in_dim = dim;
        let out_dim = match layer {
            Layer::FullyConnected { weights } => {
                if weights.rows() == 0 || weights.cols() == 0 {
                    report.push(
                        Diagnostic::error(
                            "verify/zero-dim",
                            format!(
                                "weight matrix has zero dimension ({}x{})",
                                weights.rows(),
                                weights.cols()
                            ),
                        )
                        .at_layer(index, name),
                    );
                }
                if weights.rows() != dim {
                    report.push(
                        Diagnostic::error(
                            "verify/shape-mismatch",
                            format!(
                                "layer expects {} input features but receives {}",
                                weights.rows(),
                                dim
                            ),
                        )
                        .at_layer(index, name)
                        .with_help(format!(
                            "previous layer produces width {dim}; this weight matrix needs \
                             {} rows",
                            dim
                        )),
                    );
                }
                weights.cols()
            }
            Layer::Activation(_) | Layer::Elementwise { .. } => dim,
        };

        // Value inference: non-finite weights can never quantize.
        if let Layer::FullyConnected { weights } = layer {
            let bad = weights.iter().filter(|v| !v.is_finite()).count();
            if bad > 0 {
                report.push(
                    Diagnostic::error(
                        "verify/non-finite-weight",
                        format!("{bad} weight value(s) are NaN or infinite"),
                    )
                    .at_layer(index, name)
                    .with_help("non-finite weights cannot be quantized to int8"),
                );
            }
        }

        // Dead-layer detection.
        match layer {
            Layer::Activation(Activation::Identity) => {
                report.push(
                    Diagnostic::warning("verify/dead-layer", "identity activation has no effect")
                        .at_layer(index, name)
                        .with_help("remove the layer, or keep it only as a requantization point"),
                );
            }
            Layer::FullyConnected { weights }
                if !weights.is_empty() && weights.iter().all(|&v| v == 0.0) =>
            {
                report.push(
                    Diagnostic::warning(
                        "verify/dead-layer",
                        "weight matrix is entirely zero; the layer kills the signal",
                    )
                    .at_layer(index, name),
                );
            }
            Layer::Elementwise { lambda, .. } if *lambda == 0.0 => {
                report.push(
                    Diagnostic::warning(
                        "verify/dead-layer",
                        "element-wise op with lambda = 0 has no effect",
                    )
                    .at_layer(index, name),
                );
            }
            _ => {}
        }

        // Placement and dtype inference. FC and activation layers lower to
        // the int8 device datapath; element-wise training ops must stay on
        // the host in f32 — the paper's partitioning rule.
        let placement = match layer {
            Layer::FullyConnected { .. } | Layer::Activation(_) => Placement::Device,
            Layer::Elementwise { op, .. } => {
                report.push(
                    Diagnostic::error(
                        "verify/op-placement",
                        format!(
                            "operation {} is not executable on target {}",
                            op.name(),
                            target.name
                        ),
                    )
                    .at_layer(index, name)
                    .with_help(
                        "schedule this stage on the host CPU; the accelerator lacks \
                         element-wise support",
                    ),
                );
                Placement::Host
            }
        };
        if placement == Placement::Device {
            device_layers += 1;
        }
        if let Some(prev) = prev_placement {
            if prev != placement {
                report.push(
                    Diagnostic::note(
                        "verify/placement-boundary",
                        format!(
                            "host/device boundary between layers {} and {index}: output must \
                             be {} here",
                            index - 1,
                            if placement == Placement::Device {
                                "quantized"
                            } else {
                                "dequantized"
                            },
                        ),
                    )
                    .at_layer(index, name),
                );
            }
        }
        prev_placement = Some(placement);

        let param_bytes = layer.quantized_param_bytes();
        report.layers.push(LayerPlan {
            index,
            name,
            input_dim: in_dim,
            output_dim: out_dim,
            dtype: match placement {
                Placement::Device => DType::I8,
                Placement::Host => DType::F32,
            },
            placement,
            param_bytes,
        });
        dim = out_dim;
    }

    if device_layers == 0 {
        report.push(
            Diagnostic::error(
                "verify/host-only-model",
                "no layer is executable on the accelerator; there is nothing to lower",
            )
            .with_help("run this graph directly on the host CPU instead of compiling it"),
        );
    }

    // Parameter-buffer capacity pre-check with a suggested tile split.
    let required: usize = report.layers.iter().map(|l| l.param_bytes).sum();
    report.param_bytes_required = required;
    if required > target.param_buffer_bytes {
        let mut diag = Diagnostic::error(
            "verify/over-capacity",
            format!(
                "estimated parameters need {required} bytes, target buffer holds {}",
                target.param_buffer_bytes
            ),
        );
        if let Some(largest) = report
            .layers
            .iter()
            .filter(|l| l.name == "fully-connected")
            .max_by_key(|l| l.param_bytes)
        {
            diag = diag.at_layer(largest.index, largest.name);
            let overflow = required - target.param_buffer_bytes;
            let others = required - largest.param_bytes;
            if others < target.param_buffer_bytes && largest.output_dim > 1 {
                // Smallest column-shard count for the largest layer such
                // that one shard plus everything else fits the buffer.
                let budget = target.param_buffer_bytes - others;
                let splits = largest.param_bytes.div_ceil(budget).max(2);
                let cols_per_split = largest.output_dim.div_ceil(splits);
                diag = diag.with_help(format!(
                    "split layer {}'s {} output columns into {} shards of <= {} columns \
                     (~{} bytes each) and compile the shards separately",
                    largest.index,
                    largest.output_dim,
                    splits,
                    cols_per_split,
                    largest.param_bytes.div_ceil(splits),
                ));
            } else {
                diag = diag.with_help(format!(
                    "the graph exceeds the buffer by {overflow} bytes even before the \
                     largest layer; reduce model width or use a larger target"
                ));
            }
        }
        report.push(diag);
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;
    use crate::layer::ElementwiseOp;
    use hd_tensor::rng::DetRng;
    use hd_tensor::Matrix;

    fn target(bytes: usize) -> TargetSpec {
        TargetSpec::new("test-target", 64, 64, bytes)
    }

    fn fc(rows: usize, cols: usize, seed: u64) -> Layer {
        let mut rng = DetRng::new(seed);
        Layer::FullyConnected {
            weights: Matrix::random_normal(rows, cols, &mut rng),
        }
    }

    #[test]
    fn clean_graph_verifies_ok() {
        let layers = vec![
            fc(8, 32, 1),
            Layer::Activation(Activation::Tanh),
            fc(32, 4, 2),
        ];
        let report = verify_graph(8, &layers, &target(1 << 20));
        assert!(report.is_ok(), "{report}");
        assert_eq!(report.layers().len(), 3);
        assert_eq!(report.layers()[0].output_dim, 32);
        assert_eq!(report.layers()[2].output_dim, 4);
        assert_eq!(report.param_bytes_required(), 8 * 32 + 256 + 32 * 4);
    }

    #[test]
    fn empty_graph_rejected() {
        let report = verify_graph(8, &[], &target(1024));
        assert!(report.has_errors());
        assert_eq!(report.errors().next().unwrap().code, "verify/empty-model");
    }

    #[test]
    fn shape_mismatch_reported_and_inference_continues() {
        // 8 -> (9x16)! -> (16x4): first FC mismatches, second chains off
        // the re-anchored width and must NOT re-report.
        let layers = vec![fc(9, 16, 3), fc(16, 4, 4)];
        let report = verify_graph(8, &layers, &target(1 << 20));
        let codes: Vec<_> = report.errors().map(|d| d.code.as_str()).collect();
        assert_eq!(codes, vec!["verify/shape-mismatch"]);
        assert_eq!(report.layers().len(), 2);
    }

    #[test]
    fn non_finite_weights_rejected() {
        let mut w = Matrix::zeros(2, 2);
        w[(0, 0)] = f32::NAN;
        w[(1, 1)] = 1.0;
        let layers = vec![Layer::FullyConnected { weights: w }];
        let report = verify_graph(2, &layers, &target(1 << 20));
        assert!(report
            .errors()
            .any(|d| d.code == "verify/non-finite-weight" && d.message.contains('1')));
    }

    #[test]
    fn dead_layers_warned_not_errored() {
        let layers = vec![
            fc(4, 4, 5),
            Layer::Activation(Activation::Identity),
            Layer::FullyConnected {
                weights: Matrix::zeros(4, 4),
            },
        ];
        let report = verify_graph(4, &layers, &target(1 << 20));
        assert!(report.is_ok(), "{report}");
        let dead: Vec<_> = report
            .diagnostics()
            .iter()
            .filter(|d| d.code == "verify/dead-layer")
            .collect();
        assert_eq!(dead.len(), 2);
        assert!(dead.iter().all(|d| d.severity == Severity::Warning));
    }

    #[test]
    fn elementwise_op_gets_placement_error_and_host_plan() {
        let layers = vec![
            fc(4, 8, 6),
            Layer::Elementwise {
                op: ElementwiseOp::ScaledAdd,
                lambda: 0.5,
            },
        ];
        let report = verify_graph(4, &layers, &target(1 << 20));
        assert!(report.errors().any(|d| d.code == "verify/op-placement"));
        assert_eq!(report.layers()[1].placement, Placement::Host);
        assert_eq!(report.layers()[1].dtype, DType::F32);
        // The device->host transition is noted.
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.code == "verify/placement-boundary"));
    }

    #[test]
    fn host_only_model_rejected() {
        let layers = vec![Layer::Elementwise {
            op: ElementwiseOp::ScaledSub,
            lambda: 0.1,
        }];
        let report = verify_graph(4, &layers, &target(1 << 20));
        assert!(report.errors().any(|d| d.code == "verify/host-only-model"));
    }

    #[test]
    fn over_capacity_rejected_with_split_suggestion() {
        // 64x1024 int8 weights = 65536 bytes against a 40 KiB buffer.
        let layers = vec![fc(64, 1024, 7)];
        let report = verify_graph(64, &layers, &target(40 * 1024));
        let diag = report
            .errors()
            .find(|d| d.code == "verify/over-capacity")
            .expect("over-capacity diagnostic");
        let help = diag.help.as_deref().expect("split suggestion");
        assert!(help.contains("shards"), "{help}");
        // 65536 bytes over a 40960-byte budget -> 2 shards of 512 columns.
        assert!(help.contains("2 shards"), "{help}");
        assert!(help.contains("512"), "{help}");
    }

    #[test]
    fn verify_model_delegates() {
        let mut rng = DetRng::new(8);
        let model = ModelBuilder::new(8)
            .fully_connected(Matrix::random_normal(8, 16, &mut rng))
            .unwrap()
            .activation(Activation::Tanh)
            .build()
            .unwrap();
        let report = verify_model(&model, &target(1 << 20));
        assert!(report.is_ok());
        assert_eq!(report.layers().len(), 2);
    }

    #[test]
    fn zero_input_dim_rejected() {
        let layers = vec![Layer::Activation(Activation::Tanh)];
        let report = verify_graph(0, &layers, &target(1024));
        assert!(report.errors().any(|d| d.code == "verify/zero-dim"));
    }

    #[test]
    fn report_display_lists_every_diagnostic() {
        let layers = vec![Layer::Elementwise {
            op: ElementwiseOp::ScaledAdd,
            lambda: 0.0,
        }];
        let report = verify_graph(4, &layers, &target(1024));
        let text = report.to_string();
        assert!(text.contains("verify/op-placement"));
        assert!(text.contains("verify/dead-layer"));
        assert!(text.contains("verify/host-only-model"));
    }
}
