//! Structured diagnostics shared by the static analysis passes.
//!
//! Both the model-graph verifier in this crate ([`crate::verify`]) and the
//! workspace lint engine (`hd-analysis`) report findings as [`Diagnostic`]
//! values: a severity, a stable `area/rule` code, a human message, an
//! optional site (a source location for lints, a layer index for graph
//! checks) and an optional help string. Keeping one diagnostic currency
//! lets the `hd-lint` driver merge source-level and graph-level findings
//! into a single report with one output format.

use serde::{Deserialize, Serialize};

/// How bad a finding is.
///
/// Ordering is by increasing severity, so `max()` over a report yields the
/// worst finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Informational; never fails a check.
    Note,
    /// Suspicious but allowed; fails only under a deny-warnings policy.
    Warning,
    /// A contract violation; the producing check fails.
    Error,
}

impl Severity {
    /// Stable lower-case name (`"note"` / `"warning"` / `"error"`).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// Parses the stable name back into a severity.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "note" => Some(Severity::Note),
            "warning" => Some(Severity::Warning),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

/// Where a finding is anchored.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Site {
    /// No meaningful anchor (whole-model / whole-workspace findings).
    Global,
    /// A layer of a model graph.
    Layer {
        /// Zero-based layer index in execution order.
        index: usize,
        /// Stable layer name (e.g. `"fully-connected"`).
        layer: String,
    },
    /// A location in a source file.
    Source {
        /// Path relative to the workspace root.
        file: String,
        /// One-based line number.
        line: usize,
        /// One-based column number.
        column: usize,
    },
}

impl std::fmt::Display for Site {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Site::Global => write!(f, "<global>"),
            Site::Layer { index, layer } => write!(f, "layer {index} ({layer})"),
            Site::Source { file, line, column } => write!(f, "{file}:{line}:{column}"),
        }
    }
}

/// One structured finding from a static check.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Diagnostic {
    /// How bad the finding is.
    pub severity: Severity,
    /// Stable machine-readable code, namespaced `area/rule`
    /// (e.g. `verify/over-capacity`, `lint/no-panic-in-hot-path`).
    pub code: String,
    /// Human-readable description of the finding.
    pub message: String,
    /// Where the finding is anchored.
    pub site: Site,
    /// Optional actionable suggestion.
    pub help: Option<String>,
}

impl Diagnostic {
    /// Builds an error-severity diagnostic.
    #[must_use]
    pub fn error(code: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            code: code.into(),
            message: message.into(),
            site: Site::Global,
            help: None,
        }
    }

    /// Builds a warning-severity diagnostic.
    #[must_use]
    pub fn warning(code: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(code, message)
        }
    }

    /// Builds a note-severity diagnostic.
    #[must_use]
    pub fn note(code: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Note,
            ..Diagnostic::error(code, message)
        }
    }

    /// Anchors the diagnostic at a model layer.
    #[must_use]
    pub fn at_layer(mut self, index: usize, layer: impl Into<String>) -> Self {
        self.site = Site::Layer {
            index,
            layer: layer.into(),
        };
        self
    }

    /// Anchors the diagnostic at a source location.
    #[must_use]
    pub fn at_source(mut self, file: impl Into<String>, line: usize, column: usize) -> Self {
        self.site = Site::Source {
            file: file.into(),
            line,
            column,
        };
        self
    }

    /// Attaches an actionable suggestion.
    #[must_use]
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.site {
            Site::Global => write!(
                f,
                "{}[{}]: {}",
                self.severity.name(),
                self.code,
                self.message
            )?,
            site => write!(
                f,
                "{}[{}]: {} ({})",
                self.severity.name(),
                self.code,
                self.message,
                site
            )?,
        }
        if let Some(help) = &self.help {
            write!(f, "\n  help: {help}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_by_badness() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::parse("warning"), Some(Severity::Warning));
        assert_eq!(Severity::parse("fatal"), None);
        assert_eq!(Severity::Error.name(), "error");
    }

    #[test]
    fn builders_set_fields() {
        let d = Diagnostic::error("verify/over-capacity", "too big")
            .at_layer(2, "fully-connected")
            .with_help("split the layer");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.code, "verify/over-capacity");
        assert_eq!(
            d.site,
            Site::Layer {
                index: 2,
                layer: "fully-connected".into()
            }
        );
        assert_eq!(d.help.as_deref(), Some("split the layer"));
    }

    #[test]
    fn display_includes_site_and_help() {
        let d = Diagnostic::warning("lint/no-float-eq", "float compared with ==")
            .at_source("crates/x/src/lib.rs", 10, 5)
            .with_help("compare with a tolerance");
        let text = d.to_string();
        assert!(text.contains("warning[lint/no-float-eq]"));
        assert!(text.contains("crates/x/src/lib.rs:10:5"));
        assert!(text.contains("help: compare with a tolerance"));
    }

    #[test]
    fn global_site_display_is_compact() {
        let d = Diagnostic::note("verify/boundary", "one host/device transition");
        assert_eq!(
            d.to_string(),
            "note[verify/boundary]: one host/device transition"
        );
    }
}
