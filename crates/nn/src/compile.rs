//! Lowering a wide-NN model to an accelerator tile program.
//!
//! The Edge TPU compiler takes a quantized TFLite model, verifies every op
//! is supported, checks the parameters fit the on-chip buffer, and emits a
//! device executable. [`compile`] plays that role for the simulated
//! accelerator: it quantizes, validates the op set (rejecting the
//! element-wise training ops, which is how the framework learns to keep
//! class-hypervector update on the host CPU), computes a per-layer
//! [`TilePlan`] for the systolic array, and enforces the parameter-buffer
//! capacity.

use serde::{Deserialize, Serialize};

use hd_tensor::Matrix;

use crate::error::NnError;
use crate::layer::Layer;
use crate::model::Model;
use crate::quantized::{QuantStage, QuantizedModel};
use crate::Result;

/// Static description of a compilation target.
///
/// The default models the Google Edge TPU: a 64x64 systolic MXU and an
/// 8 MiB on-chip parameter buffer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TargetSpec {
    /// Human-readable target name used in diagnostics.
    pub name: String,
    /// Systolic array height (rows of processing elements).
    pub array_rows: usize,
    /// Systolic array width (columns of processing elements).
    pub array_cols: usize,
    /// On-chip parameter buffer capacity in bytes.
    pub param_buffer_bytes: usize,
}

impl Default for TargetSpec {
    fn default() -> Self {
        TargetSpec {
            name: "edge-tpu-sim".to_owned(),
            array_rows: 64,
            array_cols: 64,
            param_buffer_bytes: 8 * 1024 * 1024,
        }
    }
}

impl TargetSpec {
    /// Creates a target with explicit parameters, rejecting invalid ones.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidTarget`] if any array dimension or the
    /// parameter buffer size is zero.
    pub fn try_new(
        name: impl Into<String>,
        array_rows: usize,
        array_cols: usize,
        param_buffer_bytes: usize,
    ) -> Result<Self> {
        if array_rows == 0 || array_cols == 0 {
            return Err(NnError::InvalidTarget(format!(
                "array dims must be positive (got {array_rows}x{array_cols})"
            )));
        }
        if param_buffer_bytes == 0 {
            return Err(NnError::InvalidTarget("buffer must be positive".to_owned()));
        }
        Ok(TargetSpec {
            name: name.into(),
            array_rows,
            array_cols,
            param_buffer_bytes,
        })
    }

    /// Creates a target with explicit parameters.
    ///
    /// Thin wrapper over [`TargetSpec::try_new`].
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        array_rows: usize,
        array_cols: usize,
        param_buffer_bytes: usize,
    ) -> Self {
        match Self::try_new(name, array_rows, array_cols, param_buffer_bytes) {
            Ok(spec) => spec,
            Err(e) => panic!("{e}"),
        }
    }
}

/// Tile decomposition of one fully-connected layer onto the systolic
/// array.
///
/// A weight-stationary array of `R x C` processing elements holds an
/// `R x C` weight tile; an `in x out` layer therefore needs
/// `ceil(in / R) * ceil(out / C)` tiles, and every input row streams
/// through each tile pair once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TilePlan {
    /// Index of the stage in the quantized model.
    pub stage_index: usize,
    /// Tiles along the reduction (input) dimension.
    pub tiles_k: usize,
    /// Tiles along the output dimension.
    pub tiles_n: usize,
    /// Quantized weight bytes resident for this layer.
    pub weight_bytes: usize,
}

impl TilePlan {
    /// Total number of weight tiles.
    pub fn tile_count(&self) -> usize {
        self.tiles_k * self.tiles_n
    }
}

/// A model lowered for a specific accelerator target: quantized stages
/// plus the tile program and buffer accounting the simulator executes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledModel {
    target: TargetSpec,
    quantized: QuantizedModel,
    tile_plans: Vec<TilePlan>,
    range_report: crate::absint::RangeReport,
}

impl CompiledModel {
    /// The target this model was compiled for.
    pub fn target(&self) -> &TargetSpec {
        &self.target
    }

    /// The quantized stages (shared datapath with the reference executor).
    pub fn quantized(&self) -> &QuantizedModel {
        &self.quantized
    }

    /// The per-FC-layer tile plans.
    pub fn tile_plans(&self) -> &[TilePlan] {
        &self.tile_plans
    }

    /// The static range analysis computed at compile time: per-stage
    /// value intervals plus any saturation/dead-range warnings. Models
    /// with overflow errors never compile, so this report is warning-only.
    pub fn range_report(&self) -> &crate::absint::RangeReport {
        &self.range_report
    }

    /// Total parameter bytes the device must hold.
    pub fn param_bytes(&self) -> usize {
        self.quantized.param_bytes()
    }

    /// The feature width the compiled model consumes.
    pub fn input_dim(&self) -> usize {
        self.quantized.input_dim()
    }

    /// The width the compiled model produces.
    pub fn output_dim(&self) -> usize {
        self.quantized.output_dim()
    }

    /// Injects memory faults into the compiled weights (see
    /// [`QuantizedModel::inject_weight_faults`]). Returns flipped bits.
    ///
    /// The attached [`CompiledModel::range_report`] is recomputed from the
    /// faulted weights, so it always describes the model as it will
    /// execute rather than the pristine weights that were compiled.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn inject_weight_faults(&mut self, rate: f64, rng: &mut hd_tensor::rng::DetRng) -> usize {
        let flipped = self.quantized.inject_weight_faults(rate, rng);
        if flipped > 0 {
            self.range_report = crate::absint::analyze_ranges(
                &self.quantized,
                &crate::absint::RangeConfig::default(),
            );
        }
        flipped
    }
}

/// Compiles a float model for `target`, calibrating quantization on the
/// given batch.
///
/// # Errors
///
/// * [`NnError::UnsupportedOp`] — the model contains an op the target
///   cannot execute (element-wise training updates).
/// * [`NnError::ModelTooLarge`] — quantized parameters exceed the
///   target's buffer.
/// * Calibration/shape errors propagated from quantization.
///
/// # Examples
///
/// Attempting to lower a training-update graph fails with a typed error:
///
/// ```
/// use hd_tensor::Matrix;
/// use wide_nn::{compile, ElementwiseOp, ModelBuilder, NnError, TargetSpec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let update = ModelBuilder::new(4)
///     .elementwise(ElementwiseOp::ScaledAdd, 1.0)
///     .build()?;
/// let err = compile::compile(&update, &Matrix::zeros(2, 4), &TargetSpec::default())
///     .unwrap_err();
/// assert!(matches!(err, NnError::UnsupportedOp { .. }));
/// # Ok(())
/// # }
/// ```
pub fn compile(model: &Model, calibration: &Matrix, target: &TargetSpec) -> Result<CompiledModel> {
    compile_inner(model, calibration, target, false)
}

/// [`compile`] with per-output-channel weight quantization — the
/// production TFLite/Edge-TPU convention (more precise on layers whose
/// weight columns differ widely in magnitude, at 4 extra bytes per output
/// channel).
///
/// # Errors
///
/// Same as [`compile`].
pub fn compile_per_channel(
    model: &Model,
    calibration: &Matrix,
    target: &TargetSpec,
) -> Result<CompiledModel> {
    compile_inner(model, calibration, target, true)
}

fn compile_inner(
    model: &Model,
    calibration: &Matrix,
    target: &TargetSpec,
    per_channel: bool,
) -> Result<CompiledModel> {
    // Op-support validation first, so the caller gets the actionable
    // "this op cannot run here" diagnostic before any quantization work.
    for layer in model.layers() {
        if let Layer::Elementwise { op, .. } = layer {
            return Err(NnError::UnsupportedOp {
                op: op.name(),
                target: target.name.clone(),
            });
        }
    }

    // Static graph verification before any quantization work. Capacity
    // overflow keeps its legacy typed form (the runtime partitioner
    // matches on it); everything else surfaces as the structured report.
    let report = crate::verify::verify_model(model, target);
    if report.has_errors() {
        if report.errors().all(|d| d.code == "verify/over-capacity") {
            return Err(NnError::ModelTooLarge {
                required: report.param_bytes_required(),
                available: target.param_buffer_bytes,
            });
        }
        return Err(NnError::Verification {
            diagnostics: report.errors().cloned().collect(),
        });
    }

    let quantized = if per_channel {
        QuantizedModel::quantize_per_channel(model, calibration)?
    } else {
        QuantizedModel::quantize(model, calibration)?
    };

    let required = quantized.param_bytes();
    if required > target.param_buffer_bytes {
        return Err(NnError::ModelTooLarge {
            required,
            available: target.param_buffer_bytes,
        });
    }

    let mut tile_plans = Vec::new();
    for (i, stage) in quantized.stages().iter().enumerate() {
        let (rows, cols, bytes) = match stage {
            QuantStage::FullyConnected { weights, .. } => {
                (weights.rows(), weights.cols(), weights.byte_size())
            }
            QuantStage::FullyConnectedPerChannel { weights, .. } => (
                weights.rows(),
                weights.cols(),
                weights.byte_size() + 4 * weights.cols(),
            ),
            QuantStage::Lut(_) => continue,
        };
        tile_plans.push(TilePlan {
            stage_index: i,
            tiles_k: rows.div_ceil(target.array_rows),
            tiles_n: cols.div_ceil(target.array_cols),
            weight_bytes: bytes,
        });
    }

    // Quantization already hard-errored on overflow; keep the full report
    // (intervals + warnings) attached to the artifact so every
    // backend-compiled model is range-verified once per cache entry.
    let range_report =
        crate::absint::analyze_ranges(&quantized, &crate::absint::RangeConfig::default());

    Ok(CompiledModel {
        target: target.clone(),
        quantized,
        tile_plans,
        range_report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;
    use crate::layer::Activation;
    use hd_tensor::rng::DetRng;

    fn model_and_calib(n: usize, d: usize, k: usize) -> (Model, Matrix) {
        let mut rng = DetRng::new(31);
        let model = ModelBuilder::new(n)
            .fully_connected(Matrix::random_normal(n, d, &mut rng))
            .unwrap()
            .activation(Activation::Tanh)
            .fully_connected(Matrix::random_normal(d, k, &mut rng))
            .unwrap()
            .build()
            .unwrap();
        let calib = Matrix::random_normal(16, n, &mut rng);
        (model, calib)
    }

    #[test]
    fn tile_plan_counts_match_ceil_division() {
        let (model, calib) = model_and_calib(100, 200, 10);
        let target = TargetSpec::new("t", 64, 64, 1 << 20);
        let compiled = compile(&model, &calib, &target).unwrap();
        let plans = compiled.tile_plans();
        assert_eq!(plans.len(), 2);
        // 100x200 layer on a 64x64 array: ceil(100/64)=2, ceil(200/64)=4.
        assert_eq!(plans[0].tiles_k, 2);
        assert_eq!(plans[0].tiles_n, 4);
        assert_eq!(plans[0].tile_count(), 8);
        // 200x10 layer: ceil(200/64)=4, ceil(10/64)=1.
        assert_eq!(plans[1].tiles_k, 4);
        assert_eq!(plans[1].tiles_n, 1);
        assert_eq!(plans[1].stage_index, 2); // after the LUT stage
    }

    #[test]
    fn exact_multiple_dims_tile_exactly() {
        let (model, calib) = model_and_calib(64, 128, 64);
        let target = TargetSpec::default();
        let compiled = compile(&model, &calib, &target).unwrap();
        assert_eq!(compiled.tile_plans()[0].tiles_k, 1);
        assert_eq!(compiled.tile_plans()[0].tiles_n, 2);
    }

    #[test]
    fn unsupported_op_carries_target_name() {
        let model = ModelBuilder::new(4)
            .elementwise(crate::layer::ElementwiseOp::ScaledSub, 0.3)
            .build()
            .unwrap();
        let err = compile(&model, &Matrix::zeros(2, 4), &TargetSpec::default()).unwrap_err();
        match err {
            NnError::UnsupportedOp { op, target } => {
                assert_eq!(op, "elementwise-scaled-sub");
                assert_eq!(target, "edge-tpu-sim");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn oversized_model_rejected() {
        let (model, calib) = model_and_calib(32, 64, 4);
        let tiny = TargetSpec::new("tiny", 64, 64, 128);
        assert!(matches!(
            compile(&model, &calib, &tiny).unwrap_err(),
            NnError::ModelTooLarge { .. }
        ));
    }

    #[test]
    fn compiled_model_preserves_behaviour() {
        let (model, calib) = model_and_calib(16, 48, 4);
        let compiled = compile(&model, &calib, &TargetSpec::default()).unwrap();
        let direct = QuantizedModel::quantize(&model, &calib).unwrap();
        assert_eq!(compiled.quantized(), &direct);
        assert_eq!(compiled.input_dim(), 16);
        assert_eq!(compiled.output_dim(), 4);
        assert_eq!(compiled.param_bytes(), direct.param_bytes());
    }

    #[test]
    fn inject_weight_faults_refreshes_range_report() {
        let (model, calib) = model_and_calib(16, 48, 4);
        let mut compiled = compile(&model, &calib, &TargetSpec::default()).unwrap();
        let pristine = compiled.range_report().clone();
        let mut rng = DetRng::new(404);
        let flipped = compiled.inject_weight_faults(0.2, &mut rng);
        assert!(flipped > 0, "rate 0.2 flipped nothing");
        let refreshed = compiled.range_report();
        assert_eq!(
            refreshed,
            &crate::absint::analyze_ranges(
                compiled.quantized(),
                &crate::absint::RangeConfig::default()
            ),
            "report must describe the faulted weights"
        );
        assert_ne!(
            refreshed, &pristine,
            "a 20% bit-flip rate should move at least one interval"
        );
    }

    #[test]
    fn default_target_is_edge_tpu_like() {
        let t = TargetSpec::default();
        assert_eq!(t.array_rows, 64);
        assert_eq!(t.array_cols, 64);
        assert_eq!(t.param_buffer_bytes, 8 * 1024 * 1024);
    }

    #[test]
    #[should_panic(expected = "array dims must be positive")]
    fn zero_array_rejected() {
        let _ = TargetSpec::new("bad", 0, 64, 1024);
    }

    #[test]
    fn try_new_returns_typed_errors() {
        assert!(matches!(
            TargetSpec::try_new("bad", 0, 64, 1024),
            Err(NnError::InvalidTarget(_))
        ));
        assert!(matches!(
            TargetSpec::try_new("bad", 64, 64, 0),
            Err(NnError::InvalidTarget(_))
        ));
        let ok = TargetSpec::try_new("ok", 64, 64, 1024).unwrap();
        assert_eq!(ok.name, "ok");
    }

    #[test]
    fn non_finite_weights_fail_verification_before_quantization() {
        let mut weights = Matrix::zeros(4, 4);
        weights[(0, 0)] = f32::INFINITY;
        let model = ModelBuilder::new(4)
            .fully_connected(weights)
            .unwrap()
            .build()
            .unwrap();
        let err = compile(&model, &Matrix::zeros(2, 4), &TargetSpec::default()).unwrap_err();
        match err {
            NnError::Verification { diagnostics } => {
                assert!(diagnostics
                    .iter()
                    .any(|d| d.code == "verify/non-finite-weight"));
            }
            other => panic!("unexpected error {other}"),
        }
    }
}
