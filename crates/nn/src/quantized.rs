use serde::{Deserialize, Serialize};

use hd_quant::lut::ActivationLut;
use hd_quant::{gemm as qgemm, CalibrationMethod, Calibrator, QuantParams, QuantizedMatrix};
use hd_tensor::Matrix;

use crate::error::NnError;
use crate::layer::Layer;
use crate::model::Model;
use crate::Result;

/// Gate every freshly quantized model through the interval range
/// analysis: a model whose worst-case accumulator can overflow the i32
/// datapath must never reach an executor.
fn check_ranges(model: &QuantizedModel) -> Result<()> {
    let report = crate::absint::analyze_ranges(model, &crate::absint::RangeConfig::default());
    if report.has_errors() {
        return Err(NnError::Verification {
            diagnostics: report.errors().cloned().collect(),
        });
    }
    Ok(())
}

/// One executable stage of a quantized model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QuantStage {
    /// Dense layer: int8 weights, requantized into `out_params`.
    FullyConnected {
        /// The quantized `in x out` weight matrix (symmetric quantization).
        weights: QuantizedMatrix,
        /// Quantization of this stage's output activations.
        out_params: QuantParams,
    },
    /// Dense layer with per-output-channel weight scales (the TFLite /
    /// Edge TPU production convention; see
    /// [`QuantizedModel::quantize_per_channel`]).
    FullyConnectedPerChannel {
        /// The per-channel-quantized `in x out` weight matrix.
        weights: hd_quant::per_channel::ChannelQuantizedMatrix,
        /// Quantization of this stage's output activations.
        out_params: QuantParams,
    },
    /// Activation through a 256-entry lookup table.
    Lut(ActivationLut),
}

/// A post-training-quantized wide NN and its reference int8 executor.
///
/// The executor uses the exact kernels of [`hd_quant`], which the
/// `tpu-sim` crate also uses; an integration test pins the two paths to
/// bit-identical outputs. This mirrors the paper's toolchain, where the
/// TFLite reference interpreter and the Edge TPU produce the same
/// quantized results.
///
/// # Examples
///
/// ```
/// use hd_tensor::{rng::DetRng, Matrix};
/// use wide_nn::{Activation, ModelBuilder, QuantizedModel};
///
/// # fn main() -> Result<(), wide_nn::NnError> {
/// let mut rng = DetRng::new(11);
/// let model = ModelBuilder::new(16)
///     .fully_connected(Matrix::random_normal(16, 64, &mut rng))?
///     .activation(Activation::Tanh)
///     .build()?;
/// let calibration = Matrix::random_normal(32, 16, &mut rng);
/// let qmodel = QuantizedModel::quantize(&model, &calibration)?;
/// let out = qmodel.forward(&calibration)?;
/// assert_eq!(out.shape(), (32, 64));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedModel {
    input_dim: usize,
    output_dim: usize,
    input_params: QuantParams,
    stages: Vec<QuantStage>,
}

impl QuantizedModel {
    /// Quantizes a float model using min/max calibration over
    /// `calibration` (a representative input batch).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from running calibration, and returns
    /// [`NnError::UnsupportedOp`] if the model contains element-wise
    /// training layers (those never reach the int8 path; the paper keeps
    /// them on the host in f32). Returns [`NnError::Verification`] if the
    /// static range analysis ([`crate::absint`]) proves some input could
    /// overflow the i32 datapath accumulator.
    pub fn quantize(model: &Model, calibration: &Matrix) -> Result<Self> {
        Self::quantize_with(model, calibration, CalibrationMethod::MinMax)
    }

    /// Quantizes with per-output-channel weight scales — the production
    /// TFLite/Edge-TPU convention, which keeps small-magnitude output
    /// channels precise when weight columns differ widely in scale.
    ///
    /// # Errors
    ///
    /// Same as [`QuantizedModel::quantize`], plus per-channel
    /// quantization errors for non-finite weights.
    pub fn quantize_per_channel(model: &Model, calibration: &Matrix) -> Result<Self> {
        let base = Self::quantize_with(model, calibration, CalibrationMethod::MinMax)?;
        // Re-quantize the FC stages per channel from the float weights.
        let mut stages = Vec::with_capacity(base.stages.len());
        let mut float_fc = model.layers().iter().filter_map(|l| match l {
            Layer::FullyConnected { weights } => Some(weights),
            _ => None,
        });
        for stage in base.stages {
            stages.push(match stage {
                QuantStage::FullyConnected { out_params, .. } => {
                    let weights = float_fc.next().ok_or_else(|| {
                        NnError::Internal("quantized stages outnumber float FC layers".into())
                    })?;
                    QuantStage::FullyConnectedPerChannel {
                        weights: hd_quant::per_channel::ChannelQuantizedMatrix::quantize(weights)?,
                        out_params,
                    }
                }
                other => other,
            });
        }
        let rebuilt = QuantizedModel { stages, ..base };
        // Per-channel scales change the accumulator magnitudes, so the
        // range gate runs again on the rebuilt stages.
        check_ranges(&rebuilt)?;
        Ok(rebuilt)
    }

    /// Quantizes with an explicit calibration method (e.g. percentile
    /// clipping for heavy-tailed activations).
    ///
    /// # Errors
    ///
    /// Same as [`QuantizedModel::quantize`].
    pub fn quantize_with(
        model: &Model,
        calibration: &Matrix,
        method: CalibrationMethod,
    ) -> Result<Self> {
        let tensors = model.forward_with_intermediates(calibration)?;
        let mut tensor_params = Vec::with_capacity(tensors.len());
        for t in &tensors {
            let mut cal = Calibrator::new(method);
            cal.observe(t.as_slice());
            tensor_params.push(cal.to_params()?);
        }

        // `forward_with_intermediates` yields one tensor per layer
        // boundary; a miss here is a library bug, propagated rather than
        // panicking mid-run.
        let params_at = |i: usize| -> Result<QuantParams> {
            tensor_params.get(i).copied().ok_or_else(|| {
                NnError::Internal(format!("missing calibration params for tensor {i}"))
            })
        };

        let mut stages = Vec::with_capacity(model.layers().len());
        for (i, layer) in model.layers().iter().enumerate() {
            match layer {
                Layer::FullyConnected { weights } => {
                    let wparams = QuantParams::symmetric(weights.max_abs())?;
                    stages.push(QuantStage::FullyConnected {
                        weights: QuantizedMatrix::quantize(weights, wparams),
                        out_params: params_at(i + 1)?,
                    });
                }
                Layer::Activation(act) => {
                    let a = *act;
                    let lut = ActivationLut::from_fn(params_at(i)?, params_at(i + 1)?, move |v| {
                        a.eval(v)
                    });
                    stages.push(QuantStage::Lut(lut));
                }
                Layer::Elementwise { op, .. } => {
                    return Err(NnError::UnsupportedOp {
                        op: op.name(),
                        target: "int8 quantization".into(),
                    })
                }
            }
        }
        let quantized = QuantizedModel {
            input_dim: model.input_dim(),
            output_dim: model.output_dim(),
            input_params: params_at(0)?,
            stages,
        };
        check_ranges(&quantized)?;
        Ok(quantized)
    }

    /// Builds a quantized model from raw parts (used by deserialization).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyModel`] if there are no stages.
    pub fn from_parts(
        input_dim: usize,
        output_dim: usize,
        input_params: QuantParams,
        stages: Vec<QuantStage>,
    ) -> Result<Self> {
        if stages.is_empty() {
            return Err(NnError::EmptyModel);
        }
        Ok(QuantizedModel {
            input_dim,
            output_dim,
            input_params,
            stages,
        })
    }

    /// The feature width this model consumes.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// The width this model produces.
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    /// Quantization of the input tensor.
    pub fn input_params(&self) -> QuantParams {
        self.input_params
    }

    /// Quantization of the final output tensor.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyModel`] if the model has no stages (not
    /// constructible through the public API, but propagated rather than
    /// panicking).
    pub fn output_params(&self) -> Result<QuantParams> {
        match self.stages.last() {
            Some(
                QuantStage::FullyConnected { out_params, .. }
                | QuantStage::FullyConnectedPerChannel { out_params, .. },
            ) => Ok(*out_params),
            Some(QuantStage::Lut(lut)) => Ok(lut.output_params()),
            None => Err(NnError::EmptyModel),
        }
    }

    /// The executable stages, in order. Exposed so execution engines (the
    /// systolic-array simulator, the host engine) can drive the same
    /// datapath while adding their own timing.
    pub fn stages(&self) -> &[QuantStage] {
        &self.stages
    }

    /// Total int8 parameter bytes — the accelerator buffer footprint.
    pub fn param_bytes(&self) -> usize {
        self.stages
            .iter()
            .map(|s| match s {
                QuantStage::FullyConnected { weights, .. } => weights.byte_size(),
                QuantStage::FullyConnectedPerChannel { weights, .. } => {
                    // i8 weights plus one f32 scale per output channel.
                    weights.byte_size() + 4 * weights.cols()
                }
                QuantStage::Lut(_) => 256,
            })
            .sum()
    }

    /// Flips each bit of every per-tensor FC weight independently with
    /// probability `rate` — the memory-fault injection hook behind the
    /// robustness experiments (per-channel and LUT stages are left
    /// untouched). Returns the number of bits flipped.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn inject_weight_faults(&mut self, rate: f64, rng: &mut hd_tensor::rng::DetRng) -> usize {
        let mut flipped = 0usize;
        for stage in &mut self.stages {
            if let QuantStage::FullyConnected { weights, .. } = stage {
                flipped += weights.apply_bit_flips(rate, rng);
            }
        }
        flipped
    }

    /// Quantizes an input batch into the model's input representation.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputDim`] on a width mismatch.
    pub fn quantize_input(&self, batch: &Matrix) -> Result<QuantizedMatrix> {
        if batch.cols() != self.input_dim {
            return Err(NnError::InputDim {
                expected: self.input_dim,
                actual: batch.cols(),
            });
        }
        Ok(QuantizedMatrix::quantize(batch, self.input_params))
    }

    /// Runs the int8 pipeline on an already-quantized batch.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the quantized kernels.
    pub fn run_quantized(&self, input: &QuantizedMatrix) -> Result<QuantizedMatrix> {
        let mut current = input.clone();
        for stage in &self.stages {
            current = match stage {
                QuantStage::FullyConnected {
                    weights,
                    out_params,
                } => qgemm::matmul_requantized(&current, weights, *out_params)?,
                QuantStage::FullyConnectedPerChannel {
                    weights,
                    out_params,
                } => {
                    let real = weights.matmul_dequantized(&current)?;
                    QuantizedMatrix::quantize(&real, *out_params)
                }
                QuantStage::Lut(lut) => {
                    let mut data = current.as_slice().to_vec();
                    lut.apply_slice(&mut data);
                    QuantizedMatrix::from_raw(
                        current.rows(),
                        current.cols(),
                        data,
                        lut.output_params(),
                    )
                }
            };
        }
        Ok(current)
    }

    /// Full reference path: quantize `f32` inputs, run int8, dequantize
    /// the outputs.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputDim`] on a width mismatch.
    pub fn forward(&self, batch: &Matrix) -> Result<Matrix> {
        let q_in = self.quantize_input(batch)?;
        let q_out = self.run_quantized(&q_in)?;
        Ok(q_out.dequantize())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;
    use crate::layer::{Activation, ElementwiseOp};
    use hd_tensor::rng::DetRng;

    fn test_model(seed: u64) -> (Model, Matrix) {
        let mut rng = DetRng::new(seed);
        let model = ModelBuilder::new(8)
            .fully_connected(Matrix::random_normal(8, 32, &mut rng))
            .unwrap()
            .activation(Activation::Tanh)
            .fully_connected(Matrix::random_normal(32, 4, &mut rng))
            .unwrap()
            .build()
            .unwrap();
        let calib = Matrix::random_normal(64, 8, &mut rng);
        (model, calib)
    }

    #[test]
    fn quantized_output_tracks_float_output() {
        let (model, calib) = test_model(1);
        let qmodel = QuantizedModel::quantize(&model, &calib).unwrap();
        let float_out = model.forward(&calib).unwrap();
        let quant_out = qmodel.forward(&calib).unwrap();
        assert_eq!(float_out.shape(), quant_out.shape());
        // Typical quantized-vs-float error stays well below the output
        // dynamic range.
        let range = float_out.max_abs().max(1e-6);
        for (f, q) in float_out.iter().zip(quant_out.iter()) {
            assert!(
                (f - q).abs() < 0.2 * range,
                "float {f} vs quantized {q} (range {range})"
            );
        }
    }

    #[test]
    fn argmax_usually_preserved_by_quantization() {
        let (model, calib) = test_model(2);
        let qmodel = QuantizedModel::quantize(&model, &calib).unwrap();
        let float_out = model.forward(&calib).unwrap();
        let quant_out = qmodel.forward(&calib).unwrap();
        let mut agree = 0;
        for r in 0..calib.rows() {
            let fa = hd_tensor::ops::argmax(float_out.row(r)).unwrap();
            let qa = hd_tensor::ops::argmax(quant_out.row(r)).unwrap();
            if fa == qa {
                agree += 1;
            }
        }
        assert!(
            agree * 10 >= calib.rows() * 9,
            "only {agree}/{} argmax agreements",
            calib.rows()
        );
    }

    #[test]
    fn elementwise_layers_rejected() {
        let model = ModelBuilder::new(4)
            .elementwise(ElementwiseOp::ScaledAdd, 0.5)
            .build()
            .unwrap();
        let calib = Matrix::zeros(4, 4);
        assert!(matches!(
            QuantizedModel::quantize(&model, &calib).unwrap_err(),
            NnError::UnsupportedOp { .. }
        ));
    }

    #[test]
    fn input_dim_checked() {
        let (model, calib) = test_model(3);
        let qmodel = QuantizedModel::quantize(&model, &calib).unwrap();
        assert!(matches!(
            qmodel.forward(&Matrix::zeros(1, 9)).unwrap_err(),
            NnError::InputDim { .. }
        ));
    }

    #[test]
    fn param_bytes_accounts_weights_and_luts() {
        let (model, calib) = test_model(4);
        let qmodel = QuantizedModel::quantize(&model, &calib).unwrap();
        assert_eq!(qmodel.param_bytes(), 8 * 32 + 256 + 32 * 4);
    }

    #[test]
    fn run_quantized_is_deterministic() {
        let (model, calib) = test_model(5);
        let qmodel = QuantizedModel::quantize(&model, &calib).unwrap();
        let q_in = qmodel.quantize_input(&calib).unwrap();
        let a = qmodel.run_quantized(&q_in).unwrap();
        let b = qmodel.run_quantized(&q_in).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn from_parts_rejects_empty() {
        let p = QuantParams::symmetric(1.0).unwrap();
        assert!(matches!(
            QuantizedModel::from_parts(4, 4, p, vec![]).unwrap_err(),
            NnError::EmptyModel
        ));
    }

    #[test]
    fn output_params_come_from_last_stage() {
        let (model, calib) = test_model(6);
        let qmodel = QuantizedModel::quantize(&model, &calib).unwrap();
        // Last stage is the classification FC layer.
        match qmodel.stages().last().unwrap() {
            QuantStage::FullyConnected { out_params, .. } => {
                assert_eq!(qmodel.output_params().unwrap(), *out_params);
            }
            other => panic!("unexpected last stage {other:?}"),
        }
    }

    #[test]
    fn per_channel_quantization_tracks_float_more_closely_on_skewed_weights() {
        // A model whose second-layer columns differ hugely in magnitude.
        let mut rng = DetRng::new(8);
        let w1 = Matrix::random_normal(8, 32, &mut rng);
        let w2 = Matrix::from_fn(32, 4, |_, c| {
            10f32.powi(c as i32 - 2) * { rng.next_normal() }
        });
        let model = ModelBuilder::new(8)
            .fully_connected(w1)
            .unwrap()
            .activation(Activation::Tanh)
            .fully_connected(w2)
            .unwrap()
            .build()
            .unwrap();
        let calib = Matrix::random_normal(48, 8, &mut rng);
        let float_out = model.forward(&calib).unwrap();
        let pt = QuantizedModel::quantize(&model, &calib).unwrap();
        let pc = QuantizedModel::quantize_per_channel(&model, &calib).unwrap();

        // Compare error on the smallest-magnitude output column.
        let col = 0;
        let err = |q: &QuantizedModel| -> f32 {
            let out = q.forward(&calib).unwrap();
            (0..calib.rows())
                .map(|r| (out[(r, col)] - float_out[(r, col)]).abs())
                .sum::<f32>()
        };
        let pt_err = err(&pt);
        let pc_err = err(&pc);
        // On the *final* layer the shared output quantization dominates
        // both schemes equally (the out_params range is set by the large
        // columns), so model-level error is never worse, while the
        // weight reconstruction itself is strictly better per channel —
        // which is what matters when the layer feeds further computation.
        assert!(
            pc_err <= pt_err * 1.01 + 1e-6,
            "per-channel err {pc_err} must not exceed per-tensor {pt_err}"
        );
        let float_w2 = match &model.layers()[2] {
            Layer::FullyConnected { weights } => weights.clone(),
            other => panic!("unexpected layer {other:?}"),
        };
        let pt_w2 = match &pt.stages()[2] {
            QuantStage::FullyConnected { weights, .. } => weights.dequantize(),
            other => panic!("unexpected stage {other:?}"),
        };
        let pc_w2 = match &pc.stages()[2] {
            QuantStage::FullyConnectedPerChannel { weights, .. } => weights.dequantize(),
            other => panic!("unexpected stage {other:?}"),
        };
        // Small-magnitude column 0 reconstructs far better per channel.
        let col_err =
            |m: &Matrix| -> f32 { (0..32).map(|r| (m[(r, 0)] - float_w2[(r, 0)]).abs()).sum() };
        assert!(
            col_err(&pc_w2) < col_err(&pt_w2) / 4.0,
            "per-channel column error {} vs per-tensor {}",
            col_err(&pc_w2),
            col_err(&pt_w2)
        );
    }

    #[test]
    fn per_channel_model_runs_and_counts_bytes() {
        let (model, calib) = test_model(9);
        let pc = QuantizedModel::quantize_per_channel(&model, &calib).unwrap();
        let out = pc.forward(&calib).unwrap();
        assert_eq!(out.shape(), (64, 4));
        // Per-channel stores 4 extra bytes per output channel.
        let pt = QuantizedModel::quantize(&model, &calib).unwrap();
        assert_eq!(pc.param_bytes(), pt.param_bytes() + 4 * (32 + 4));
    }

    #[test]
    fn percentile_calibration_also_works() {
        let (model, calib) = test_model(7);
        let qmodel =
            QuantizedModel::quantize_with(&model, &calib, CalibrationMethod::Percentile(0.999))
                .unwrap();
        let out = qmodel.forward(&calib).unwrap();
        assert_eq!(out.shape(), (64, 4));
    }
}
