//! Exhaustive interleaving model checker for the SDF runtime.
//!
//! The static analyzer (`hd-analysis`) proves properties of a *declared*
//! graph symbolically, firing whole stages atomically. The runtime
//! ([`crate::runtime`]) executes the same graph with one thread per
//! stage over bounded `sync_channel`s, where every token send and
//! receive is its own blocking step. This module closes the gap between
//! the two: a **virtual scheduler** that replays the runtime's exact
//! per-token semantics — the recv/fire/send loop of `run_map`, over the
//! endpoint layout fixed by
//! [`runtime::stage_ports`](crate::runtime::stage_ports) — and
//! exhaustively explores **all interleavings** of those steps with a
//! bounded-depth DFS over the state graph.
//!
//! At every reachable state the checker verifies:
//!
//! 1. **No deadlock** — some non-terminal stage can always take a step
//!    ([`Violation::Deadlock`]).
//! 2. **Bounded occupancy** — no channel ever holds more tokens than
//!    its declared capacity ([`Violation::Overflow`]).
//! 3. **Termination** — every maximal run finishes within the analytic
//!    transition bound (each step moves a token, completes a firing, or
//!    retires a stage, so the bound is exact); a search that exhausts
//!    its state or depth budget is reported ([`Violation::Livelock`]),
//!    never silently pruned.
//! 4. **Loss-free teardown** — with [`Inject::StopAndError`], a
//!    `Fire::Stop` and an executor error are injected at *every*
//!    reachable firing point of every stage; downstream receivers must
//!    still drain every token buffered before the fault
//!    ([`Violation::LostToken`]).
//! 5. **Token balance** — every fault-free terminal state has each
//!    stage at its full `repetition × iterations` firing target and
//!    each channel back at its initial occupancy
//!    ([`Violation::Unbalanced`]).
//!
//! Exploration is **deterministic**: no wall clock, no RNG, fixed
//! enumeration order (stage index, then step kind, then port order),
//! and exact state dedup via a hash map keyed on the full state (not a
//! lossy digest, so hash collisions cannot mask states). Two sound
//! reductions keep the state space small without hiding violations:
//!
//! * **Persistent singleton fires** — a fault-free `fire` step touches
//!   no channel and commutes with every step of every other stage, so
//!   when a stage's only enabled step is a normal fire the checker
//!   commits to the lowest such stage's fire alone (a singleton
//!   persistent set of an invisible transition). At injection points
//!   the fire branches three ways and the reduction is disabled.
//! * **Sleep sets** — after exploring step `t` from a state, sibling
//!   subtrees inherit `t` in their sleep set when independent of the
//!   sibling (disjoint stages *and* disjoint channel footprints), the
//!   classic Godefroid reduction. Sleep sets are reconciled with the
//!   visited cache: a state reached again under a sleep set that is not
//!   a superset of the stored one is re-explored under the
//!   intersection, so the combination stays exhaustive.
//!
//! The checker models the [`Binding::Map`](crate::runtime::Binding)
//! contract, which `ParMap` (order-preserving reassembly) and
//! rate-respecting `Stream` bindings refine; rate violations by a
//! binding are the runtime's own protocol check, out of scope here.
//! Multi-input stages drain their ports in channel order, so — exactly
//! like the runtime — a fault can strand tokens on a *later* port of a
//! stage that wound down on an earlier one; the checker reports that as
//! lost tokens rather than papering over it (all production graphs are
//! single-input per stage and pass clean).

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt;

use crate::graph::SdfGraph;
use crate::runtime::{stage_ports, ExecutablePlan, StagePorts};
use crate::solve;

/// Fault-injection mode of a check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inject {
    /// Explore only fault-free executions.
    None,
    /// Additionally branch every reachable firing of every stage into a
    /// `Fire::Stop` and an executor-error variant. At most one fault is
    /// injected per explored path, which still covers every reachable
    /// injection point.
    StopAndError,
}

/// Configuration of one model-check run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckConfig {
    /// Steady-state iterations to drive (each stage fires
    /// `repetition × iterations` times). Two by default, so teardown
    /// interacts with a second iteration's in-flight tokens.
    pub iterations: u64,
    /// Fault-injection mode.
    pub inject: Inject,
    /// Cap on distinct states explored; hitting it truncates the search
    /// and reports [`Violation::Livelock`] so pruning is never silent.
    pub max_states: u64,
    /// Cap on the DFS path depth (transitions along one run). `None`
    /// derives the analytic bound, which no terminating execution can
    /// exceed — so exceeding it *is* a non-termination witness. An
    /// explicit cap below the analytic bound makes hitting it ordinary
    /// truncation (reported, but not a witness).
    pub max_depth: Option<usize>,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            iterations: 2,
            inject: Inject::StopAndError,
            max_states: 4_000_000,
            max_depth: None,
        }
    }
}

/// Why the checker could not start: the graph has no balanced firing
/// target to check against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckSetupError(pub solve::RateError);

impl fmt::Display for CheckSetupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "graph has no repetition vector: {:?}", self.0)
    }
}

impl std::error::Error for CheckSetupError {}

/// One property violation, with the reachable state that witnesses it.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Violation {
    /// No non-terminal stage can take a step.
    Deadlock {
        /// The lowest-index stuck stage.
        stage: usize,
        /// The channel it is blocked on.
        channel: usize,
        /// True when blocked receiving (empty channel, live producer);
        /// false when blocked sending (full channel, live consumer).
        receiving: bool,
        /// Channel occupancies at the stall, in channel order.
        tokens: Vec<u32>,
    },
    /// A channel exceeded its declared capacity.
    Overflow {
        /// Producing stage.
        stage: usize,
        /// Channel index.
        channel: usize,
        /// Observed occupancy.
        occupancy: u32,
        /// The declared capacity it exceeded.
        capacity: usize,
    },
    /// Tokens were stranded on a channel whose consumer retired without
    /// a fault of its own: the drain guarantee failed.
    LostToken {
        /// Consuming stage that should have drained them.
        stage: usize,
        /// Channel index.
        channel: usize,
        /// Tokens stranded beyond the channel's initial occupancy.
        stranded: u32,
        /// Stage index of the fault injected on this path, if any.
        fault: Option<usize>,
    },
    /// A fault-free terminal state where a stage fell short of its
    /// firing target: the token counts do not balance.
    Unbalanced {
        /// Stage index.
        stage: usize,
        /// Firings observed.
        fired: u64,
        /// Firings required (`repetition × iterations`).
        target: u64,
    },
    /// The search was cut short, so termination is not proven.
    Livelock {
        /// Distinct states explored before truncation.
        states: u64,
        /// Transitions executed before truncation.
        transitions: u64,
        /// True when a path exceeded the transition bound (a genuine
        /// non-termination witness); false when the state budget ran
        /// out.
        depth_exceeded: bool,
    },
}

/// Outcome of a model-check run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckReport {
    /// Distinct states visited.
    pub states: u64,
    /// Transitions executed (including re-explorations forced by
    /// sleep-set reconciliation).
    pub transitions: u64,
    /// Deepest DFS path reached.
    pub max_depth_seen: usize,
    /// Whether the search was truncated by a budget (also reported as a
    /// [`Violation::Livelock`]).
    pub truncated: bool,
    /// Deduplicated violations, sorted for deterministic output.
    pub violations: Vec<Violation>,
}

impl CheckReport {
    /// Whether every property held on every interleaving and the
    /// exploration was complete.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Whether any interleaving deadlocks.
    #[must_use]
    pub fn has_deadlock(&self) -> bool {
        self.violations
            .iter()
            .any(|v| matches!(v, Violation::Deadlock { .. }))
    }
}

/// How a stage left the system, mirroring the runtime's exit paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Terminal {
    /// Reached its firing target and exited the loop.
    Completed,
    /// `collect_inputs` saw a dead upstream on an empty buffer: the
    /// stage drained what it could and wound down.
    WoundDownRecv,
    /// A send failed because the consumer was gone: upstream fail-fast.
    WoundDownSend,
    /// An injected `Fire::Stop`: the firing counts, nothing is
    /// produced, the stage retires gracefully.
    Stopped,
    /// An injected executor error: the firing does not count.
    Failed,
}

/// The phase of one virtual stage thread within its current firing.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Phase {
    /// Collecting inputs; `got[p]` tokens received on input port `p`.
    Recv { got: Vec<u32> },
    /// Emitting outputs; `sent[p]` tokens sent on output port `p`.
    Send { sent: Vec<u32> },
    /// Endpoints dropped.
    Done(Terminal),
}

/// One interleaving state: channel occupancies, every stage's phase and
/// firing count, and the single-fault budget.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    tokens: Vec<u32>,
    fired: Vec<u64>,
    phases: Vec<Phase>,
    fault: Option<usize>,
}

/// A step of the virtual scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Step {
    /// Receive one token on input port `port`.
    Recv { stage: usize, port: usize },
    /// Complete one firing (no channel interaction).
    Fire { stage: usize },
    /// Complete one firing, then stop gracefully (injected fault).
    FireStop { stage: usize },
    /// Fail the firing (injected fault).
    FireError { stage: usize },
    /// Send one token on output port `port`.
    Send { stage: usize, port: usize },
    /// Drop endpoints with the given terminal kind.
    End { stage: usize, kind: Terminal },
}

impl Step {
    fn stage(self) -> usize {
        match self {
            Step::Recv { stage, .. }
            | Step::Fire { stage }
            | Step::FireStop { stage }
            | Step::FireError { stage }
            | Step::Send { stage, .. }
            | Step::End { stage, .. } => stage,
        }
    }

    /// The channels this step can affect. Terminal transitions touch
    /// every adjacent channel: they flip the liveness their neighbours'
    /// enabled steps depend on.
    fn touches(self, ports: &[StagePorts]) -> ChannelSet {
        match self {
            Step::Recv { stage, port } => ChannelSet::one(ports[stage].inputs[port].channel),
            Step::Send { stage, port } => ChannelSet::one(ports[stage].outputs[port].channel),
            Step::Fire { .. } => ChannelSet::NONE,
            Step::FireStop { stage } | Step::FireError { stage } | Step::End { stage, .. } => {
                let mut set = ChannelSet::NONE;
                for port in ports[stage].inputs.iter().chain(&ports[stage].outputs) {
                    set.insert(port.channel);
                }
                set
            }
        }
    }

    /// Independence for sleep sets: distinct stages with disjoint
    /// channel footprints commute and preserve each other's
    /// enabledness.
    fn independent(self, other: Step, ports: &[StagePorts]) -> bool {
        self.stage() != other.stage() && !self.touches(ports).intersects(other.touches(ports))
    }
}

/// A channel-index bit set. Graphs with more than 64 channels saturate
/// the set, which soundly disables the sleep-set reduction (everything
/// is treated as overlapping) without affecting exhaustiveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ChannelSet {
    bits: u64,
    saturated: bool,
}

impl ChannelSet {
    const NONE: ChannelSet = ChannelSet {
        bits: 0,
        saturated: false,
    };

    fn one(channel: usize) -> ChannelSet {
        let mut set = ChannelSet::NONE;
        set.insert(channel);
        set
    }

    fn insert(&mut self, channel: usize) {
        if channel < 64 {
            self.bits |= 1 << channel;
        } else {
            self.saturated = true;
        }
    }

    fn intersects(self, other: ChannelSet) -> bool {
        self.saturated || other.saturated || (self.bits & other.bits) != 0
    }
}

/// The immutable checking context.
struct Checker<'g> {
    graph: &'g SdfGraph,
    ports: Vec<StagePorts>,
    /// Blocking bound per channel (declared, or the solver minimum for
    /// unbounded declarations) — the `sync_channel` size.
    capacities: Vec<usize>,
    /// Initial occupancy per channel (pipeline delays).
    initial: Vec<u32>,
    /// Firing target per stage: `repetition × iterations`.
    targets: Vec<u64>,
    inject: Inject,
    max_states: u64,
    max_depth: usize,
    /// Whether `max_depth` is at least the analytic transition bound —
    /// only then is exceeding it a non-termination witness rather than
    /// an explicitly requested shallow search.
    depth_is_witness: bool,
}

/// Mutable exploration bookkeeping.
struct Search {
    /// Visited states with the sleep set they were explored under.
    visited: HashMap<State, Vec<Step>>,
    states: u64,
    transitions: u64,
    max_depth_seen: usize,
    truncated: bool,
    depth_exceeded: bool,
    violations: Vec<Violation>,
}

impl Search {
    fn record(&mut self, violation: Violation) {
        // Deduplicate and bound the list; the counts in the report keep
        // the full magnitude visible.
        if self.violations.len() < 64 && !self.violations.contains(&violation) {
            self.violations.push(violation);
        }
    }
}

/// Model-checks a validated plan — the production entry point, using
/// exactly the capacities the runtime's `sync_channel`s would.
///
/// # Errors
///
/// [`CheckSetupError`] when the graph has no repetition vector. A
/// validated plan always has one, so this only fires for graphs routed
/// around [`ExecutablePlan::validate`].
pub fn check_plan(
    plan: &ExecutablePlan,
    cfg: &CheckConfig,
) -> Result<CheckReport, CheckSetupError> {
    Ok(check_resolved(
        plan.graph(),
        plan.capacities().to_vec(),
        plan.repetition(),
        cfg,
    ))
}

/// Model-checks a declared graph directly, resolving capacities the way
/// the runtime would (declared bound as-is, solver minimum for
/// unbounded channels) — but **without** first rejecting undersized
/// bounds, deadlocking structures, or initial tokens. This is the
/// diagnostic entry point: it exhibits the interleaving that deadlocks
/// or strands tokens where [`ExecutablePlan::validate`] would only
/// refuse.
///
/// # Errors
///
/// [`CheckSetupError`] when no repetition vector exists (rate
/// inconsistency): there is no firing target to check against.
pub fn check_graph(graph: &SdfGraph, cfg: &CheckConfig) -> Result<CheckReport, CheckSetupError> {
    let repetition = solve::repetition_vector(graph).map_err(CheckSetupError)?;
    let capacities = graph
        .channels()
        .iter()
        .map(|c| c.capacity.unwrap_or_else(|| solve::min_capacity(c)))
        .collect();
    Ok(check_resolved(graph, capacities, &repetition, cfg))
}

fn check_resolved(
    graph: &SdfGraph,
    capacities: Vec<usize>,
    repetition: &[u64],
    cfg: &CheckConfig,
) -> CheckReport {
    let ports = stage_ports(graph);
    let targets: Vec<u64> = repetition.iter().map(|&r| r * cfg.iterations).collect();

    // Analytic per-path transition bound: every step of a terminating
    // run either moves a token (per-firing receives + sends), completes
    // a firing, or retires a stage — so the bound below is exact and a
    // path exceeding it has provably entered a loop.
    let bound: u64 = targets
        .iter()
        .zip(&ports)
        .map(|(&target, p)| {
            let moved: usize = p
                .inputs
                .iter()
                .chain(&p.outputs)
                .map(|port| port.rate)
                .sum();
            target.saturating_mul(moved as u64 + 1).saturating_add(1)
        })
        .sum();
    let analytic_depth = usize::try_from(bound).unwrap_or(usize::MAX);
    let max_depth = cfg.max_depth.unwrap_or(analytic_depth).max(1);
    let checker = Checker {
        capacities,
        initial: graph
            .channels()
            .iter()
            .map(|c| u32::try_from(c.initial_tokens).unwrap_or(u32::MAX))
            .collect(),
        targets,
        inject: cfg.inject,
        max_states: cfg.max_states,
        max_depth,
        depth_is_witness: max_depth >= analytic_depth,
        graph,
        ports,
    };

    let initial = State {
        tokens: checker.initial.clone(),
        fired: vec![0; graph.stages().len()],
        phases: (0..graph.stages().len())
            .map(|s| Phase::Recv {
                got: vec![0; checker.ports[s].inputs.len()],
            })
            .collect(),
        fault: None,
    };

    let mut search = Search {
        visited: HashMap::new(),
        states: 0,
        transitions: 0,
        max_depth_seen: 0,
        truncated: false,
        depth_exceeded: false,
        violations: Vec::new(),
    };
    // Initial occupancies must already respect the declared bounds.
    for (c, channel) in graph.channels().iter().enumerate() {
        if let Some(declared) = channel.capacity {
            if channel.initial_tokens > declared {
                search.record(Violation::Overflow {
                    stage: channel.from.index(),
                    channel: c,
                    occupancy: checker.initial[c],
                    capacity: declared,
                });
            }
        }
    }
    explore(&checker, &mut search, initial);

    if search.truncated {
        let (states, transitions) = (search.states, search.transitions);
        search.record(Violation::Livelock {
            states,
            transitions,
            depth_exceeded: search.depth_exceeded,
        });
    }
    search.violations.sort();
    CheckReport {
        states: search.states,
        transitions: search.transitions,
        max_depth_seen: search.max_depth_seen,
        truncated: search.truncated,
        violations: search.violations,
    }
}

fn is_done(phase: &Phase) -> bool {
    matches!(phase, Phase::Done(_))
}

/// Enumerates the enabled steps of one stage in deterministic order,
/// mirroring the runtime's `run_map` loop: check the firing target,
/// collect inputs port-by-port, execute, emit outputs port-by-port.
/// Every stage has at most one enabled step, except at a firing point
/// with an unspent fault budget, where the normal / stop / error
/// variants branch.
fn stage_steps(checker: &Checker<'_>, state: &State, s: usize, out: &mut Vec<Step>) {
    let ports = &checker.ports[s];
    match &state.phases[s] {
        Phase::Done(_) => {}
        Phase::Recv { got } => {
            if state.fired[s] >= checker.targets[s] {
                out.push(Step::End {
                    stage: s,
                    kind: Terminal::Completed,
                });
                return;
            }
            // First port still short of its rate — exactly
            // `collect_inputs`, which never looks past a blocked port.
            for (p, port) in ports.inputs.iter().enumerate() {
                if (got[p] as usize) < port.rate {
                    if state.tokens[port.channel] > 0 {
                        out.push(Step::Recv { stage: s, port: p });
                    } else if is_done(
                        &state.phases[checker.graph.channels()[port.channel].from.index()],
                    ) {
                        // recv() returned Err: drained and upstream dead.
                        out.push(Step::End {
                            stage: s,
                            kind: Terminal::WoundDownRecv,
                        });
                    }
                    // Otherwise: blocked on a live producer — no step.
                    return;
                }
            }
            // All inputs collected: the firing executes.
            out.push(Step::Fire { stage: s });
            if checker.inject == Inject::StopAndError && state.fault.is_none() {
                out.push(Step::FireStop { stage: s });
                out.push(Step::FireError { stage: s });
            }
        }
        Phase::Send { sent } => {
            for (p, port) in ports.outputs.iter().enumerate() {
                if (sent[p] as usize) < port.rate {
                    let channel = &checker.graph.channels()[port.channel];
                    if is_done(&state.phases[channel.to.index()]) {
                        // send() returned Err: consumer gone, fail fast.
                        out.push(Step::End {
                            stage: s,
                            kind: Terminal::WoundDownSend,
                        });
                    } else if (state.tokens[port.channel] as usize)
                        < checker.capacities[port.channel]
                    {
                        out.push(Step::Send { stage: s, port: p });
                    }
                    // Otherwise: blocked on a full channel — no step.
                    return;
                }
            }
            // Unreachable in practice: `apply` loops a completed Send
            // phase straight back to Recv. Kept total for safety.
            out.push(Step::Fire { stage: s });
        }
    }
}

/// Applies a step, checking declared capacity right where occupancy
/// changes.
fn apply(checker: &Checker<'_>, search: &mut Search, state: &State, step: Step) -> State {
    let mut next = state.clone();
    match step {
        Step::Recv { stage, port } => {
            next.tokens[checker.ports[stage].inputs[port].channel] -= 1;
            if let Phase::Recv { got } = &mut next.phases[stage] {
                got[port] += 1;
            }
        }
        Step::Fire { stage } => match &state.phases[stage] {
            Phase::Recv { .. } => {
                next.fired[stage] += 1;
                if checker.ports[stage].outputs.is_empty() {
                    next.phases[stage] = Phase::Recv {
                        got: vec![0; checker.ports[stage].inputs.len()],
                    };
                } else {
                    next.phases[stage] = Phase::Send {
                        sent: vec![0; checker.ports[stage].outputs.len()],
                    };
                }
            }
            // The defensive Send-phase loop-around from `stage_steps`.
            Phase::Send { .. } | Phase::Done(_) => {
                next.phases[stage] = Phase::Recv {
                    got: vec![0; checker.ports[stage].inputs.len()],
                };
            }
        },
        Step::FireStop { stage } => {
            // Fire::Stop with empty outputs: the firing counts, nothing
            // is produced, endpoints drop.
            next.fired[stage] += 1;
            next.phases[stage] = Phase::Done(Terminal::Stopped);
            next.fault = Some(stage);
        }
        Step::FireError { stage } => {
            next.phases[stage] = Phase::Done(Terminal::Failed);
            next.fault = Some(stage);
        }
        Step::Send { stage, port } => {
            let channel = checker.ports[stage].outputs[port].channel;
            next.tokens[channel] += 1;
            if let Some(declared) = checker.graph.channels()[channel].capacity {
                if next.tokens[channel] as usize > declared {
                    search.record(Violation::Overflow {
                        stage,
                        channel,
                        occupancy: next.tokens[channel],
                        capacity: declared,
                    });
                }
            }
            if let Phase::Send { sent } = &mut next.phases[stage] {
                sent[port] += 1;
                if sent
                    .iter()
                    .zip(&checker.ports[stage].outputs)
                    .all(|(&done, p)| done as usize >= p.rate)
                {
                    // Last token of the firing: straight back to Recv.
                    next.phases[stage] = Phase::Recv {
                        got: vec![0; checker.ports[stage].inputs.len()],
                    };
                }
            }
        }
        Step::End { stage, kind } => {
            next.phases[stage] = Phase::Done(kind);
        }
    }
    next
}

/// Checks the properties that are only meaningful once every stage has
/// retired and no step remains.
fn check_terminal(checker: &Checker<'_>, search: &mut Search, state: &State) {
    for (c, channel) in checker.graph.channels().iter().enumerate() {
        let consumer = channel.to.index();
        let stranded = match state.phases[consumer] {
            // A consumer that retired at its target may leave at most
            // the pipeline-delay tokens behind; one that wound down on
            // a dead upstream was obligated to drain to empty first.
            Phase::Done(Terminal::Completed) => state.tokens[c].saturating_sub(checker.initial[c]),
            Phase::Done(Terminal::WoundDownRecv) => state.tokens[c],
            // Tokens parked behind the fault itself, or behind a stage
            // that failed fast on a dead downstream, are the documented
            // fail-fast semantics, not a drain violation.
            _ => 0,
        };
        if stranded > 0 {
            search.record(Violation::LostToken {
                stage: consumer,
                channel: c,
                stranded,
                fault: state.fault,
            });
        }
    }
    if state.fault.is_none() {
        for (s, &fired) in state.fired.iter().enumerate() {
            if fired != checker.targets[s] {
                search.record(Violation::Unbalanced {
                    stage: s,
                    fired,
                    target: checker.targets[s],
                });
            }
        }
    }
}

/// Diagnoses a wedged state: the lowest non-retired stage and the
/// channel it is blocked on.
fn diagnose_deadlock(checker: &Checker<'_>, search: &mut Search, state: &State) {
    let Some(stage) = state.phases.iter().position(|p| !is_done(p)) else {
        return;
    };
    let (channel, receiving) = match &state.phases[stage] {
        Phase::Recv { got } => checker.ports[stage]
            .inputs
            .iter()
            .enumerate()
            .find(|(p, port)| (got[*p] as usize) < port.rate)
            .map_or((0, true), |(_, port)| (port.channel, true)),
        Phase::Send { sent } => checker.ports[stage]
            .outputs
            .iter()
            .enumerate()
            .find(|(p, port)| (sent[*p] as usize) < port.rate)
            .map_or((0, false), |(_, port)| (port.channel, false)),
        Phase::Done(_) => (0, true),
    };
    search.record(Violation::Deadlock {
        stage,
        channel,
        receiving,
        tokens: state.tokens.clone(),
    });
}

/// One DFS stack frame: a state, the steps still to explore from it,
/// and the sleep set in force.
struct Frame {
    state: State,
    steps: Vec<Step>,
    cursor: usize,
    sleep: Vec<Step>,
}

/// Visits a state: reconciles it with the visited cache, enumerates its
/// enabled steps, applies the persistent-singleton reduction, checks
/// deadlock/terminal properties, and pushes a frame if there is
/// anything left to explore.
fn enter(
    checker: &Checker<'_>,
    search: &mut Search,
    state: State,
    sleep: Vec<Step>,
    stack: &mut Vec<Frame>,
) {
    // Prune only when a previous visit explored at least this much
    // (its sleep set was a subset of ours); otherwise re-explore under
    // the intersection.
    let sleep = match search.visited.entry(state.clone()) {
        Entry::Occupied(mut seen) => {
            if seen.get().iter().all(|t| sleep.contains(t)) {
                return;
            }
            let merged: Vec<Step> = seen
                .get()
                .iter()
                .copied()
                .filter(|t| sleep.contains(t))
                .collect();
            seen.insert(merged.clone());
            merged
        }
        Entry::Vacant(slot) => {
            slot.insert(sleep.clone());
            search.states += 1;
            sleep
        }
    };

    let mut enabled = Vec::new();
    for s in 0..checker.graph.stages().len() {
        stage_steps(checker, &state, s, &mut enabled);
    }
    if enabled.is_empty() {
        if state.phases.iter().all(is_done) {
            check_terminal(checker, search, &state);
        } else {
            diagnose_deadlock(checker, search, &state);
        }
        return;
    }

    // Persistent singleton: the lowest stage whose sole enabled step is
    // an invisible normal fire. (At an injection point that stage has
    // three enabled steps, so the reduction self-disables there.)
    let singleton = enabled.iter().copied().find(|step| {
        matches!(step, Step::Fire { stage }
            if enabled.iter().filter(|t| t.stage() == *stage).count() == 1)
    });
    let candidates = match singleton {
        Some(fire) => vec![fire],
        None => enabled,
    };
    // A state whose every candidate is slept is fully covered by
    // sibling subtrees — not a deadlock.
    let steps: Vec<Step> = candidates
        .into_iter()
        .filter(|t| !sleep.contains(t))
        .collect();
    if steps.is_empty() {
        return;
    }
    stack.push(Frame {
        state,
        steps,
        cursor: 0,
        sleep,
    });
}

/// Iterative DFS with persistent singleton fires and sleep sets.
fn explore(checker: &Checker<'_>, search: &mut Search, initial: State) {
    let mut stack: Vec<Frame> = Vec::new();
    enter(checker, search, initial, Vec::new(), &mut stack);

    while let Some(frame) = stack.last_mut() {
        if search.states > checker.max_states {
            search.truncated = true;
            return;
        }
        if frame.cursor >= frame.steps.len() {
            stack.pop();
            continue;
        }
        let step = frame.steps[frame.cursor];
        frame.cursor += 1;

        // Sleep set for the child: inherited plus already-explored
        // siblings, keeping only steps independent of the one taken.
        let child_sleep: Vec<Step> = frame
            .sleep
            .iter()
            .chain(&frame.steps[..frame.cursor - 1])
            .copied()
            .filter(|t| t.independent(step, &checker.ports))
            .collect();
        let state = frame.state.clone();

        if stack.len() > checker.max_depth {
            search.truncated = true;
            search.depth_exceeded |= checker.depth_is_witness;
            return;
        }
        search.transitions += 1;
        search.max_depth_seen = search.max_depth_seen.max(stack.len());
        let next = apply(checker, search, &state, step);
        enter(checker, search, next, child_sleep, &mut stack);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Resource, SdfGraph};

    fn chain(cap: usize) -> SdfGraph {
        let mut g = SdfGraph::new("chain");
        let a = g.add_stage("a", Resource::LINK, 1.0);
        let b = g.add_stage("b", Resource::DEVICE, 1.0);
        let c = g.add_stage("c", Resource::LINK, 1.0);
        g.add_channel(a, b, 1, 1, Some(cap));
        g.add_channel(b, c, 1, 1, Some(cap));
        g
    }

    #[test]
    fn validated_chain_is_clean_under_fault_injection() {
        let plan = ExecutablePlan::validate(chain(2)).unwrap();
        let report = check_plan(&plan, &CheckConfig::default()).unwrap();
        assert!(report.is_clean(), "{:?}", report.violations);
        assert!(!report.truncated);
        assert!(report.states > 0 && report.transitions > 0);
    }

    #[test]
    fn zero_capacity_chain_deadlocks() {
        let report = check_graph(&chain(0), &CheckConfig::default()).unwrap();
        assert!(report.has_deadlock(), "{:?}", report.violations);
    }

    #[test]
    fn zero_token_cycle_deadlocks() {
        let mut g = SdfGraph::new("cycle");
        let a = g.add_stage("a", Resource::Host, 1.0);
        let b = g.add_stage("b", Resource::Host, 1.0);
        g.add_channel(a, b, 1, 1, Some(1));
        g.add_channel(b, a, 1, 1, Some(1));
        let report = check_graph(&g, &CheckConfig::default()).unwrap();
        assert!(report.has_deadlock(), "{:?}", report.violations);
    }

    #[test]
    fn primed_cycle_completes_and_restores_delay_tokens() {
        let mut g = SdfGraph::new("primed");
        let a = g.add_stage("a", Resource::Host, 1.0);
        let b = g.add_stage("b", Resource::Host, 1.0);
        g.add_channel(a, b, 1, 1, Some(1));
        g.add_channel_with_delay(b, a, 1, 1, Some(1), 1);
        let report = check_graph(&g, &CheckConfig::default()).unwrap();
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    #[test]
    fn initial_tokens_above_declared_capacity_overflow() {
        let mut g = SdfGraph::new("over");
        let a = g.add_stage("a", Resource::Host, 1.0);
        let b = g.add_stage("b", Resource::Host, 1.0);
        g.add_channel_with_delay(a, b, 1, 1, Some(1), 2);
        let report = check_graph(&g, &CheckConfig::default()).unwrap();
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v, Violation::Overflow { channel: 0, .. })),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn fanout_graph_is_clean_at_min_capacities() {
        let mut g = SdfGraph::new("fan");
        let plan = g.add_stage("plan", Resource::Host, 0.0);
        let member = g.add_stage("member", Resource::Host, 1.0);
        let merge = g.add_stage("merge", Resource::Host, 0.0);
        g.add_channel(plan, member, 4, 1, Some(4));
        g.add_channel(member, merge, 1, 4, Some(4));
        let plan = ExecutablePlan::validate(g).unwrap();
        let report = check_plan(&plan, &CheckConfig::default()).unwrap();
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    #[test]
    fn multi_input_fault_strands_later_port_tokens() {
        // join consumes from both ports in channel order; killing the
        // first producer can strand a token the second already buffered
        // — the runtime's own drain gap, which the checker must surface
        // rather than paper over.
        let mut g = SdfGraph::new("join");
        let a = g.add_stage("a", Resource::Host, 1.0);
        let b = g.add_stage("b", Resource::Host, 1.0);
        let j = g.add_stage("join", Resource::Host, 1.0);
        g.add_channel(a, j, 1, 1, Some(1));
        g.add_channel(b, j, 1, 1, Some(1));
        let plan = ExecutablePlan::validate(g).unwrap();
        let clean = check_plan(
            &plan,
            &CheckConfig {
                inject: Inject::None,
                ..CheckConfig::default()
            },
        )
        .unwrap();
        assert!(clean.is_clean(), "{:?}", clean.violations);
        let faulted = check_plan(&plan, &CheckConfig::default()).unwrap();
        assert!(
            faulted
                .violations
                .iter()
                .any(|v| matches!(v, Violation::LostToken { channel: 1, .. })),
            "{:?}",
            faulted.violations
        );
    }

    #[test]
    fn exhausted_state_budget_reports_livelock() {
        let report = check_graph(
            &chain(2),
            &CheckConfig {
                max_states: 3,
                ..CheckConfig::default()
            },
        )
        .unwrap();
        assert!(report.truncated);
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v, Violation::Livelock { .. })),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn reports_are_deterministic() {
        let once = check_graph(&chain(2), &CheckConfig::default()).unwrap();
        let twice = check_graph(&chain(2), &CheckConfig::default()).unwrap();
        assert_eq!(once, twice);
    }

    #[test]
    fn rate_inconsistency_is_a_setup_error() {
        let mut g = SdfGraph::new("bad");
        let a = g.add_stage("a", Resource::Host, 1.0);
        let b = g.add_stage("b", Resource::Host, 1.0);
        g.add_channel(a, b, 2, 1, None);
        g.add_channel(a, b, 1, 1, None);
        assert!(check_graph(&g, &CheckConfig::default()).is_err());
    }
}
