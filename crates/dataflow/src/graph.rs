//! The SDF stage-graph IR.
//!
//! A [`SdfGraph`] is a set of [`Stage`]s connected by token [`Channel`]s.
//! Each stage is pinned to one [`Resource`]; each channel declares how
//! many tokens one producer firing appends and one consumer firing
//! removes, an optional declared capacity (the `sync_channel` bound or
//! slot count of the real implementation), and the tokens present before
//! the first firing (pipeline delays). Costs are plain seconds supplied
//! by the caller — this crate never computes hardware costs itself,
//! keeping it free of any simulator dependency.

use std::fmt;

/// Where a stage executes. Firings on the same resource serialize; the
/// critical-path model lets distinct resources overlap freely.
///
/// Devices and links are indexed so multi-accelerator schedules (e.g.
/// encode on device 0, score on device 1) can declare distinct,
/// mutually overlapping resources. Index 0 is the classic single-device
/// setup and displays as plain `device` / `link`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Resource {
    /// An accelerator (MXU + activation units), by device index.
    Device(usize),
    /// The host CPU.
    Host,
    /// A host↔device DMA link, by link index.
    Link(usize),
}

impl Resource {
    /// The single-accelerator device resource (`Device(0)`).
    pub const DEVICE: Resource = Resource::Device(0);
    /// The single-accelerator DMA link resource (`Link(0)`).
    pub const LINK: Resource = Resource::Link(0);
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::Device(0) => write!(f, "device"),
            Resource::Device(n) => write!(f, "device{n}"),
            Resource::Host => write!(f, "host"),
            Resource::Link(0) => write!(f, "link"),
            Resource::Link(n) => write!(f, "link{n}"),
        }
    }
}

/// Opaque handle to a stage within one [`SdfGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StageId(pub(crate) usize);

impl StageId {
    /// Position of the stage in [`SdfGraph::stages`] order.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// One schedulable actor: a name, the resource it occupies while firing,
/// and the cost of a single firing in seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// Human-readable stage name, used in diagnostics.
    pub name: String,
    /// Resource the stage occupies while firing.
    pub resource: Resource,
    /// Seconds one firing takes on its resource.
    pub cost_s: f64,
}

/// A bounded token channel between two stages.
#[derive(Debug, Clone, PartialEq)]
pub struct Channel {
    /// Producing stage.
    pub from: StageId,
    /// Consuming stage.
    pub to: StageId,
    /// Tokens appended per producer firing.
    pub produce: usize,
    /// Tokens removed per consumer firing.
    pub consume: usize,
    /// Declared capacity (e.g. a `sync_channel` depth or slot count);
    /// `None` models an unbounded buffer.
    pub capacity: Option<usize>,
    /// Tokens present before the first firing (pipeline delay).
    pub initial_tokens: usize,
}

/// A declared dataflow schedule: stages, channels, and the per-iteration
/// dispatch overhead that no overlap can hide.
#[derive(Debug, Clone, PartialEq)]
pub struct SdfGraph {
    name: String,
    overhead_s: f64,
    stages: Vec<Stage>,
    channels: Vec<Channel>,
}

impl SdfGraph {
    /// Creates an empty graph named `name` (the name prefixes every
    /// diagnostic the analyzer emits for it).
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        SdfGraph {
            name: name.into(),
            overhead_s: 0.0,
            stages: Vec::new(),
            channels: Vec::new(),
        }
    }

    /// Sets the fixed per-iteration overhead (dispatch latency etc.)
    /// added to the critical path outside any resource overlap.
    #[must_use]
    pub fn with_overhead_s(mut self, overhead_s: f64) -> Self {
        self.overhead_s = overhead_s;
        self
    }

    /// Adds a stage and returns its handle.
    pub fn add_stage(
        &mut self,
        name: impl Into<String>,
        resource: Resource,
        cost_s: f64,
    ) -> StageId {
        self.stages.push(Stage {
            name: name.into(),
            resource,
            cost_s,
        });
        StageId(self.stages.len() - 1)
    }

    /// Connects `from` to `to` with the given rates and declared
    /// capacity and no initial tokens.
    pub fn add_channel(
        &mut self,
        from: StageId,
        to: StageId,
        produce: usize,
        consume: usize,
        capacity: Option<usize>,
    ) {
        self.add_channel_with_delay(from, to, produce, consume, capacity, 0);
    }

    /// [`SdfGraph::add_channel`] with `initial_tokens` already present
    /// on the channel before the first firing.
    pub fn add_channel_with_delay(
        &mut self,
        from: StageId,
        to: StageId,
        produce: usize,
        consume: usize,
        capacity: Option<usize>,
        initial_tokens: usize,
    ) {
        self.channels.push(Channel {
            from,
            to,
            produce,
            consume,
            capacity,
            initial_tokens,
        });
    }

    /// The graph's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The per-iteration overhead in seconds.
    #[must_use]
    pub fn overhead_s(&self) -> f64 {
        self.overhead_s
    }

    /// All stages, in insertion order (a [`StageId`] indexes this).
    #[must_use]
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// All channels, in insertion order.
    #[must_use]
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// `"<producer> -> <consumer>"`, for diagnostics and reports.
    #[must_use]
    pub fn channel_label(&self, channel: &Channel) -> String {
        format!(
            "{} -> {}",
            self.stages[channel.from.0].name, self.stages[channel.to.0].name
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_sequential_ids() {
        let mut g = SdfGraph::new("g").with_overhead_s(0.5);
        let a = g.add_stage("a", Resource::LINK, 1.0);
        let b = g.add_stage("b", Resource::DEVICE, 2.0);
        g.add_channel(a, b, 1, 1, Some(2));
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(g.stages().len(), 2);
        assert_eq!(g.channels().len(), 1);
        assert_eq!(g.overhead_s(), 0.5);
        assert_eq!(g.channel_label(&g.channels()[0]), "a -> b");
    }

    #[test]
    fn indexed_resources_display_classic_names_for_index_zero() {
        assert_eq!(Resource::DEVICE.to_string(), "device");
        assert_eq!(Resource::Device(1).to_string(), "device1");
        assert_eq!(Resource::Host.to_string(), "host");
        assert_eq!(Resource::LINK.to_string(), "link");
        assert_eq!(Resource::Link(2).to_string(), "link2");
    }

    #[test]
    fn resources_order_devices_then_host_then_links() {
        let mut rs = vec![
            Resource::Link(1),
            Resource::Host,
            Resource::Device(1),
            Resource::LINK,
            Resource::DEVICE,
        ];
        rs.sort();
        assert_eq!(
            rs,
            vec![
                Resource::DEVICE,
                Resource::Device(1),
                Resource::Host,
                Resource::LINK,
                Resource::Link(1),
            ]
        );
    }
}
