//! Synchronous-dataflow schedules: declare, solve, execute.
//!
//! This crate is the dependency-free core of the pipelined execution
//! layer. It owns four things:
//!
//! 1. [`graph`] — the SDF stage-graph IR: stages pinned to a
//!    [`Resource`], token channels with produce/consume rates, declared
//!    capacities and pipeline delays.
//! 2. [`solve`] — the rate mathematics shared by the static analyzer
//!    (`hd-analysis`) and the runtime: balance-equation solve to the
//!    smallest integer repetition vector, minimal safe channel bounds,
//!    symbolic steady-state deadlock simulation, and per-resource busy
//!    time.
//! 3. [`model_check`] — the exhaustive interleaving model checker: a
//!    virtual scheduler that replays the runtime's per-token semantics
//!    over every interleaving (with partial-order reduction), proving
//!    deadlock freedom, bounded occupancy, termination, loss-free
//!    teardown under injected faults, and token balance for a concrete
//!    plan — the properties the symbolic analyzer only checks
//!    atomically.
//! 4. [`runtime`] — the executor. A validated [`ExecutablePlan`] binds
//!    one executor closure per stage and runs the graph on real scoped
//!    threads connected by bounded `sync_channel`s sized from the
//!    solver's minimal safe bounds. This module is the single
//!    sanctioned concurrency site in the workspace (see the
//!    `no-adhoc-concurrency` lint): every pipelined production schedule
//!    executes through [`runtime::run`] rather than hand-rolled
//!    threads.
//!
//! The crate deliberately has no dependencies (not even on the tensor
//! layer) so that every other crate — tensor GEMM, the device
//! simulator, the backends, the bagging trainer, the analyzer — can
//! execute through one shared runtime without dependency cycles.

pub mod graph;
pub mod model_check;
pub mod runtime;
pub mod solve;

pub use graph::{Channel, Resource, SdfGraph, Stage, StageId};
pub use model_check::{check_graph, check_plan, CheckConfig, CheckReport, Inject, Violation};
pub use runtime::{run, Binding, ExecutablePlan, Fire, PlanError, RunError, RunReport, StageCtx};
