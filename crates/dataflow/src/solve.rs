//! Rate mathematics shared by the static analyzer and the runtime.
//!
//! Everything here is pure: balance-equation solving to the smallest
//! positive integer repetition vector, minimal safe channel bounds
//! (`produce + consume - gcd`), a symbolic steady-state execution that
//! detects capacity-induced deadlocks, and per-resource busy time. The
//! analyzer (`hd-analysis`) wraps these results in diagnostics; the
//! [`runtime`](crate::runtime) uses them to size its `sync_channel`s
//! and drive firings.

use crate::graph::{Channel, Resource, SdfGraph};

/// Greatest common divisor (u64, gcd(0, n) = n).
#[must_use]
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Why no repetition vector exists for a graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateError {
    /// The channel references a stage outside the graph.
    Dangling {
        /// Index into [`SdfGraph::channels`].
        channel: usize,
    },
    /// The channel declares a zero produce or consume rate.
    ZeroRate {
        /// Index into [`SdfGraph::channels`].
        channel: usize,
    },
    /// The channel's rates contradict the rest of the graph: no
    /// balanced repetition vector exists.
    Inconsistent {
        /// Index into [`SdfGraph::channels`].
        channel: usize,
    },
}

/// A non-negative rational, kept reduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ratio {
    num: u64,
    den: u64,
}

impl Ratio {
    fn new(num: u64, den: u64) -> Ratio {
        let g = gcd(num, den).max(1);
        Ratio {
            num: num / g,
            den: den / g,
        }
    }

    /// `self * num / den`, reduced.
    fn scaled(self, num: u64, den: u64) -> Ratio {
        let scale = Ratio::new(num, den);
        // Cross-reduce before multiplying so u64 stays comfortable for
        // any realistic rate declaration.
        let g1 = gcd(self.num, scale.den).max(1);
        let g2 = gcd(scale.num, self.den).max(1);
        Ratio {
            num: (self.num / g1) * (scale.num / g2),
            den: (self.den / g2) * (scale.den / g1),
        }
    }
}

/// Solves the balance equations `rate[from] * produce = rate[to] *
/// consume` for the smallest positive integer repetition vector, or
/// reports the offending channel.
pub fn repetition_vector(graph: &SdfGraph) -> Result<Vec<u64>, RateError> {
    let n = graph.stages().len();

    // Structural validity: every channel must name real stages and
    // positive rates, otherwise no balance equation is meaningful.
    for (c, channel) in graph.channels().iter().enumerate() {
        if channel.from.index() >= n || channel.to.index() >= n {
            return Err(RateError::Dangling { channel: c });
        }
        if channel.produce == 0 || channel.consume == 0 {
            return Err(RateError::ZeroRate { channel: c });
        }
    }

    let mut rates: Vec<Option<Ratio>> = vec![None; n];

    // Adjacency over channel indices, both directions.
    let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (c, channel) in graph.channels().iter().enumerate() {
        adjacency[channel.from.index()].push(c);
        adjacency[channel.to.index()].push(c);
    }

    for start in 0..n {
        if rates[start].is_some() {
            continue;
        }
        rates[start] = Some(Ratio::new(1, 1));
        let mut queue = vec![start];
        while let Some(s) = queue.pop() {
            let rate = match rates[s] {
                Some(r) => r,
                None => continue,
            };
            for &c in &adjacency[s] {
                let channel = &graph.channels()[c];
                let (other, expected) = if channel.from.index() == s {
                    // rate[to] = rate[from] * produce / consume
                    (
                        channel.to.index(),
                        rate.scaled(channel.produce as u64, channel.consume as u64),
                    )
                } else {
                    (
                        channel.from.index(),
                        rate.scaled(channel.consume as u64, channel.produce as u64),
                    )
                };
                match rates[other] {
                    None => {
                        rates[other] = Some(expected);
                        queue.push(other);
                    }
                    Some(found) if found != expected => {
                        return Err(RateError::Inconsistent { channel: c });
                    }
                    Some(_) => {}
                }
            }
        }
    }

    // Scale to the smallest positive integer vector: multiply by the
    // lcm of denominators, then divide by the gcd of the results.
    let mut lcm: u64 = 1;
    for rate in rates.iter().flatten() {
        lcm = lcm / gcd(lcm, rate.den) * rate.den;
    }
    let mut reps: Vec<u64> = rates
        .into_iter()
        .map(|r| r.map_or(1, |r| r.num * (lcm / r.den)))
        .collect();
    let common = reps.iter().copied().fold(0, gcd).max(1);
    for r in &mut reps {
        *r /= common;
    }
    Ok(reps)
}

/// Minimal safe capacity of one channel: `produce + consume - gcd`, and
/// never below the initial token count.
#[must_use]
pub fn min_capacity(channel: &Channel) -> usize {
    let g = gcd(channel.produce as u64, channel.consume as u64) as usize;
    (channel.produce + channel.consume - g).max(channel.initial_tokens)
}

/// The stalled state of a steady-state simulation that deadlocked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stall {
    /// Tokens on each channel at the stall, in channel order.
    pub tokens: Vec<usize>,
    /// Unfired firings per stage at the stall, in stage order.
    pub remaining: Vec<u64>,
}

/// Symbolically executes one steady-state iteration under the declared
/// capacities. Returns `Ok(())` when every stage completes its
/// repetition count, or the stalled state for diagnosis.
pub fn simulate_steady_state(graph: &SdfGraph, repetition: &[u64]) -> Result<(), Stall> {
    let channels = graph.channels();
    let mut tokens: Vec<usize> = channels.iter().map(|c| c.initial_tokens).collect();
    let mut remaining: Vec<u64> = repetition.to_vec();

    let can_fire = |stage: usize, tokens: &[usize]| -> bool {
        for (c, channel) in channels.iter().enumerate() {
            let consumes = channel.to.index() == stage;
            let produces = channel.from.index() == stage;
            let mut level = tokens[c];
            if consumes {
                if level < channel.consume {
                    return false;
                }
                level -= channel.consume;
            }
            if produces {
                if let Some(cap) = channel.capacity {
                    if level + channel.produce > cap {
                        return false;
                    }
                }
            }
        }
        true
    };

    loop {
        let mut progressed = false;
        for (stage, rem) in remaining.iter_mut().enumerate() {
            while *rem > 0 && can_fire(stage, &tokens) {
                for (c, channel) in channels.iter().enumerate() {
                    if channel.to.index() == stage {
                        tokens[c] -= channel.consume;
                    }
                    if channel.from.index() == stage {
                        tokens[c] += channel.produce;
                    }
                }
                *rem -= 1;
                progressed = true;
            }
        }
        if remaining.iter().all(|&r| r == 0) {
            return Ok(());
        }
        if !progressed {
            return Err(Stall { tokens, remaining });
        }
    }
}

/// Busy seconds per resource given a firing count per stage:
/// `Σ firings × cost` of the stages pinned to each resource. Always
/// includes the classic single-accelerator trio (`device`, `host`,
/// `link`) so reports stay shape-stable, plus any further indexed
/// resources the graph uses, in [`Resource`] order.
#[must_use]
pub fn resource_busy_s(graph: &SdfGraph, firings: &[u64]) -> Vec<(Resource, f64)> {
    let mut resources = vec![Resource::DEVICE, Resource::Host, Resource::LINK];
    for stage in graph.stages() {
        if !resources.contains(&stage.resource) {
            resources.push(stage.resource);
        }
    }
    resources.sort();
    resources
        .into_iter()
        .map(|resource| {
            let busy: f64 = graph
                .stages()
                .iter()
                .zip(firings)
                .filter(|(stage, _)| stage.resource == resource)
                .map(|(stage, &reps)| reps as f64 * stage.cost_s)
                .fold(0.0, |acc, s| acc + s);
            (resource, busy)
        })
        .collect()
}

/// Analytic elapsed seconds of one steady-state iteration:
/// `overhead + max(resource busy times)`. Resources serialize
/// internally and overlap with each other.
#[must_use]
pub fn critical_path_s(graph: &SdfGraph, repetition: &[u64]) -> f64 {
    let longest = resource_busy_s(graph, repetition)
        .into_iter()
        .fold(0.0f64, |acc, (_, busy)| acc.max(busy));
    graph.overhead_s() + longest
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Resource, SdfGraph};

    #[test]
    fn unit_chain_solves_to_ones() {
        let mut g = SdfGraph::new("chain").with_overhead_s(1e-3);
        let a = g.add_stage("a", Resource::LINK, 2e-3);
        let b = g.add_stage("b", Resource::DEVICE, 5e-3);
        let c = g.add_stage("c", Resource::LINK, 1e-3);
        g.add_channel(a, b, 1, 1, Some(2));
        g.add_channel(b, c, 1, 1, Some(2));
        let reps = repetition_vector(&g).unwrap();
        assert_eq!(reps, vec![1, 1, 1]);
        assert!((critical_path_s(&g, &reps) - 6e-3).abs() < 1e-15);
        assert_eq!(min_capacity(&g.channels()[0]), 1);
        assert!(simulate_steady_state(&g, &reps).is_ok());
    }

    #[test]
    fn fan_out_scales_the_vector() {
        let mut g = SdfGraph::new("fan");
        let plan = g.add_stage("plan", Resource::Host, 0.0);
        let member = g.add_stage("member", Resource::Host, 1.0);
        let merge = g.add_stage("merge", Resource::Host, 0.0);
        g.add_channel(plan, member, 4, 1, Some(4));
        g.add_channel(member, merge, 1, 4, Some(4));
        assert_eq!(repetition_vector(&g).unwrap(), vec![1, 4, 1]);
        assert_eq!(min_capacity(&g.channels()[0]), 4);
    }

    #[test]
    fn contradictory_rates_name_the_channel() {
        let mut g = SdfGraph::new("bad");
        let a = g.add_stage("a", Resource::Host, 1.0);
        let b = g.add_stage("b", Resource::Host, 1.0);
        g.add_channel(a, b, 2, 1, None);
        g.add_channel(a, b, 1, 1, None);
        assert_eq!(
            repetition_vector(&g),
            Err(RateError::Inconsistent { channel: 1 })
        );
    }

    #[test]
    fn zero_rate_is_structural() {
        let mut g = SdfGraph::new("zero");
        let a = g.add_stage("a", Resource::Host, 1.0);
        let b = g.add_stage("b", Resource::Host, 1.0);
        g.add_channel(a, b, 0, 1, None);
        assert_eq!(
            repetition_vector(&g),
            Err(RateError::ZeroRate { channel: 0 })
        );
    }

    #[test]
    fn zero_token_cycle_stalls() {
        let mut g = SdfGraph::new("cycle");
        let a = g.add_stage("a", Resource::Host, 1.0);
        let b = g.add_stage("b", Resource::Host, 1.0);
        g.add_channel(a, b, 1, 1, None);
        g.add_channel(b, a, 1, 1, None);
        let reps = repetition_vector(&g).unwrap();
        let stall = simulate_steady_state(&g, &reps).unwrap_err();
        assert_eq!(stall.remaining, vec![1, 1]);
    }

    #[test]
    fn busy_times_cover_indexed_resources() {
        let mut g = SdfGraph::new("two-device");
        let a = g.add_stage("enc", Resource::DEVICE, 2.0);
        let b = g.add_stage("score", Resource::Device(1), 3.0);
        g.add_channel(a, b, 1, 1, Some(2));
        let busy = resource_busy_s(&g, &[1, 1]);
        let labels: Vec<String> = busy.iter().map(|(r, _)| r.to_string()).collect();
        assert_eq!(labels, vec!["device", "device1", "host", "link"]);
        assert!((critical_path_s(&g, &[1, 1]) - 3.0).abs() < 1e-15);
    }
}
