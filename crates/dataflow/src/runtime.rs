//! The SDF schedule runtime: execute a validated graph directly.
//!
//! Lifecycle: **declare** an [`SdfGraph`](crate::graph::SdfGraph)
//! (stages + channels + costs), **verify** it into an
//! [`ExecutablePlan`] (rates balance, capacities meet the solver's
//! minimal safe bounds, steady state cannot deadlock), **bind** one
//! [`Binding`] executor per stage, then **execute** with [`run`]. The
//! runtime spawns one scoped thread per stage, connects them with
//! bounded `sync_channel`s sized exactly from the plan's capacities,
//! and drives each stage `repetition × iterations` firings.
//!
//! This module is the single sanctioned concurrency site in the
//! workspace: the `no-adhoc-concurrency` lint allowlists exactly this
//! file, and every production pipeline (overlapped device invoke,
//! streamed encode→train, parallel ensemble members, blocked GEMM rows,
//! two-device serving) executes through it.
//!
//! Teardown is cooperative and loss-free for completed work: when a
//! stage stops early — [`Fire::Stop`], an executor error, or a
//! disconnected neighbour — it drops its channel endpoints. Upstream
//! senders then fail fast, while downstream receivers still drain every
//! token already buffered, so results produced before a fault stand
//! (this is what keeps the degraded mid-stream host fallback of the
//! streamed training path loss-free).

use std::fmt;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread;

use crate::graph::SdfGraph;
use crate::solve;

/// Why a graph cannot be promoted to an [`ExecutablePlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A channel references a stage outside the graph.
    Dangling {
        /// Index into the graph's channel list.
        channel: usize,
    },
    /// A channel declares a zero produce or consume rate.
    ZeroRate {
        /// Index into the graph's channel list.
        channel: usize,
    },
    /// No balanced repetition vector exists.
    RateInconsistent {
        /// Index into the graph's channel list.
        channel: usize,
    },
    /// A declared capacity is below the solver's minimal safe bound.
    Undersized {
        /// Index into the graph's channel list.
        channel: usize,
        /// The declared capacity.
        declared: usize,
        /// The minimal safe bound (`produce + consume - gcd`).
        minimum: usize,
    },
    /// Steady-state execution stalls under the declared capacities.
    Deadlock,
    /// The runtime cannot materialize initial tokens (pipeline delays):
    /// it would have to invent token values.
    InitialTokens {
        /// Index into the graph's channel list.
        channel: usize,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Dangling { channel } => {
                write!(f, "channel {channel} references a stage outside the graph")
            }
            PlanError::ZeroRate { channel } => {
                write!(f, "channel {channel} declares a zero token rate")
            }
            PlanError::RateInconsistent { channel } => write!(
                f,
                "channel {channel} contradicts the graph's rates: no repetition vector exists"
            ),
            PlanError::Undersized {
                channel,
                declared,
                minimum,
            } => write!(
                f,
                "channel {channel} declares capacity {declared}, below the minimal safe \
                 bound {minimum}"
            ),
            PlanError::Deadlock => {
                write!(
                    f,
                    "steady-state execution deadlocks under the declared capacities"
                )
            }
            PlanError::InitialTokens { channel } => write!(
                f,
                "channel {channel} declares initial tokens, which the runtime cannot \
                 materialize"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// A verified, executable schedule: the graph plus its solved
/// repetition vector and the channel capacities the runtime will use
/// (the declared bound, or the solver's minimal safe bound for
/// unbounded declarations).
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutablePlan {
    graph: SdfGraph,
    repetition: Vec<u64>,
    capacities: Vec<usize>,
}

impl ExecutablePlan {
    /// Verifies `graph` into a plan the runtime can execute: solves the
    /// repetition vector, checks every declared capacity against the
    /// minimal safe bound, and symbolically executes one steady-state
    /// iteration to prove deadlock freedom.
    pub fn validate(graph: SdfGraph) -> Result<ExecutablePlan, PlanError> {
        let repetition = solve::repetition_vector(&graph).map_err(|e| match e {
            solve::RateError::Dangling { channel } => PlanError::Dangling { channel },
            solve::RateError::ZeroRate { channel } => PlanError::ZeroRate { channel },
            solve::RateError::Inconsistent { channel } => PlanError::RateInconsistent { channel },
        })?;
        let mut capacities = Vec::with_capacity(graph.channels().len());
        for (c, channel) in graph.channels().iter().enumerate() {
            if channel.initial_tokens > 0 {
                return Err(PlanError::InitialTokens { channel: c });
            }
            let minimum = solve::min_capacity(channel);
            match channel.capacity {
                Some(declared) if declared < minimum => {
                    return Err(PlanError::Undersized {
                        channel: c,
                        declared,
                        minimum,
                    });
                }
                Some(declared) => capacities.push(declared),
                None => capacities.push(minimum),
            }
        }
        if solve::simulate_steady_state(&graph, &repetition).is_err() {
            return Err(PlanError::Deadlock);
        }
        Ok(ExecutablePlan {
            graph,
            repetition,
            capacities,
        })
    }

    /// The verified graph.
    #[must_use]
    pub fn graph(&self) -> &SdfGraph {
        &self.graph
    }

    /// Firings of each stage per iteration, in stage order.
    #[must_use]
    pub fn repetition(&self) -> &[u64] {
        &self.repetition
    }

    /// The `sync_channel` bound the runtime uses per channel, in
    /// channel order.
    #[must_use]
    pub fn capacities(&self) -> &[usize] {
        &self.capacities
    }
}

/// Flow control returned by a [`Binding::Map`] executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fire {
    /// Keep firing until the repetition target is met.
    Continue,
    /// Stop this stage after the current firing (e.g. a circuit breaker
    /// opened); downstream stages drain what was already produced.
    Stop,
}

/// Per-stage fault policy enforced by the runtime around every firing
/// of a supervised binding: a bounded retry budget with deterministic
/// exponential backoff (charged to the *simulated* clock — the runtime
/// never sleeps), and an optional per-firing deadline handed to the
/// executor through its [`FiringCtx`].
///
/// What happens once the budget is spent is the stage's
/// [`Escalation`]; the policy only decides *how long* the runtime keeps
/// trying the current executor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Supervision {
    /// Retries per firing beyond the first attempt.
    pub max_retries: u32,
    /// Backoff charged before the first retry, simulated seconds.
    pub backoff_base_s: f64,
    /// Multiplier applied to the backoff on each further retry.
    pub backoff_factor: f64,
    /// Optional per-firing deadline, passed to the executor via
    /// [`FiringCtx::deadline_s`] (the runtime cannot preempt an
    /// executor; the executor enforces it, e.g. as a device watchdog).
    pub deadline_s: Option<f64>,
}

impl Default for Supervision {
    fn default() -> Self {
        Supervision::none()
    }
}

impl Supervision {
    /// No retries, no deadline: every executor error escalates
    /// immediately. The wrapper still names the stage, firing, and
    /// attempt count in [`RunError::Stage`] and still counts faults.
    #[must_use]
    pub fn none() -> Self {
        Supervision {
            max_retries: 0,
            backoff_base_s: 0.0,
            backoff_factor: 1.0,
            deadline_s: None,
        }
    }

    /// Bounded retries with exponential backoff.
    #[must_use]
    pub fn retries(max_retries: u32, backoff_base_s: f64, backoff_factor: f64) -> Self {
        Supervision {
            max_retries,
            backoff_base_s,
            backoff_factor,
            deadline_s: None,
        }
    }

    /// Sets the per-firing deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline_s: Option<f64>) -> Self {
        self.deadline_s = deadline_s;
        self
    }

    /// Backoff charged before the `retry`-th retry (1-based):
    /// `base * factor^(retry-1)` — the same schedule the backend
    /// resilience policy uses.
    #[must_use]
    pub fn backoff_s(&self, retry: u32) -> f64 {
        self.backoff_base_s * self.backoff_factor.powi(retry.saturating_sub(1) as i32)
    }
}

/// What the runtime tells a supervised executor about the attempt it is
/// about to run. `attempt > 0` means this call is a retry of the same
/// firing over the same inputs; `backoff_s` is the simulated backoff
/// charged immediately before this attempt (zero on first attempts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiringCtx {
    /// Firing index (the same index a [`MapFn`] receives).
    pub firing: u64,
    /// Zero-based attempt number within this firing.
    pub attempt: u32,
    /// Simulated backoff seconds charged before this attempt.
    pub backoff_s: f64,
    /// The supervising policy's per-firing deadline, if any.
    pub deadline_s: Option<f64>,
}

/// Serial supervised executor: like [`MapFn`], but inputs arrive by
/// reference so the runtime can re-run the same firing after a fault
/// without requiring `T: Clone`.
pub type SupervisedFn<'env, T, E> =
    Box<dyn FnMut(FiringCtx, &[T]) -> Result<(Vec<T>, Fire), E> + Send + 'env>;

/// Quarantine handler: given the failing firing, the attempts spent on
/// the current executor, and the error that exhausted them, either
/// re-binds the stage to a replacement executor (drain to a sibling
/// device, degrade to a host path, ...) or gives up (`None` aborts the
/// run with the original error). May be consulted repeatedly — each
/// replacement gets a fresh retry budget and the same escalation.
pub type RebindFn<'env, T, E> =
    Box<dyn FnMut(u64, u32, &E) -> Option<SupervisedFn<'env, T, E>> + Send + 'env>;

/// Data-parallel supervised executor: like [`ParMapFn`], but receives a
/// [`FiringCtx`] and borrows its inputs so a faulted firing can retry
/// on its worker.
pub type SupervisedParFn<'env, T, E> =
    Box<dyn Fn(FiringCtx, &[T]) -> Result<Vec<T>, E> + Send + Sync + 'env>;

/// Per-firing recovery for a supervised data-parallel stage, consulted
/// after a firing's retry budget is spent: `None` aborts with the
/// original error; `Some(result)` stands in for the firing (an `Err`
/// aborts with the replacement's error). Unlike the serial
/// [`Escalation::Substitute`], recovery is consulted independently per
/// firing — parallel firings are independent work items, so one item's
/// recovery must not degrade its siblings.
pub type RecoverFn<'env, T, E> =
    Box<dyn Fn(u64, u32, &E, &[T]) -> Option<Result<Vec<T>, E>> + Send + Sync + 'env>;

/// What a supervised serial stage does once a firing's retry budget is
/// exhausted (or the error is not retryable), in escalation order:
/// retry < substitute < quarantine < abort.
pub enum Escalation<'env, T, E> {
    /// Fail the run with a [`RunError::Stage`] naming the stage,
    /// firing, and attempt count.
    Abort,
    /// Permanently swap in a fallback executor (circuit-breaker
    /// semantics: the primary is never consulted again) and re-run the
    /// failed firing on it with a fresh retry budget. If the fallback
    /// itself escalates, the stage aborts.
    Substitute(SupervisedFn<'env, T, E>),
    /// Ask a [`RebindFn`] for a replacement executor; reusable across
    /// the run, so a stage can drain through a whole pool of siblings
    /// before giving up.
    Quarantine(RebindFn<'env, T, E>),
}

/// A serial stage executor under a [`Supervision`] policy: the primary
/// executor, a retryability predicate (non-retryable errors skip the
/// budget and escalate at once), and the escalation action.
pub struct Supervised<'env, T, E> {
    policy: Supervision,
    primary: SupervisedFn<'env, T, E>,
    retryable: Box<dyn FnMut(&E) -> bool + Send + 'env>,
    escalation: Escalation<'env, T, E>,
}

impl<'env, T, E> Supervised<'env, T, E> {
    /// Wraps a serial executor under `policy` with every error
    /// retryable and [`Escalation::Abort`].
    #[must_use]
    pub fn map(
        policy: Supervision,
        f: impl FnMut(FiringCtx, &[T]) -> Result<(Vec<T>, Fire), E> + Send + 'env,
    ) -> Self {
        Supervised {
            policy,
            primary: Box::new(f),
            retryable: Box::new(|_| true),
            escalation: Escalation::Abort,
        }
    }

    /// Restricts which errors consume the retry budget; the rest
    /// escalate immediately.
    #[must_use]
    pub fn retry_when(mut self, pred: impl FnMut(&E) -> bool + Send + 'env) -> Self {
        self.retryable = Box::new(pred);
        self
    }

    /// Escalates to a permanent fallback executor.
    #[must_use]
    pub fn or_substitute(
        mut self,
        fallback: impl FnMut(FiringCtx, &[T]) -> Result<(Vec<T>, Fire), E> + Send + 'env,
    ) -> Self {
        self.escalation = Escalation::Substitute(Box::new(fallback));
        self
    }

    /// Escalates through a quarantine/re-bind handler.
    #[must_use]
    pub fn or_quarantine(
        mut self,
        rebind: impl FnMut(u64, u32, &E) -> Option<SupervisedFn<'env, T, E>> + Send + 'env,
    ) -> Self {
        self.escalation = Escalation::Quarantine(Box::new(rebind));
        self
    }

    /// The stage binding for this supervised executor.
    #[must_use]
    pub fn into_binding(self) -> Binding<'env, T, E> {
        Binding::Supervised(Box::new(self))
    }
}

/// Serial per-firing executor: receives this firing's consumed tokens
/// (in channel order), returns the produced tokens (in channel order)
/// and whether to keep firing. On [`Fire::Stop`] the produced tokens
/// may be empty.
pub type MapFn<'env, T, E> = Box<dyn FnMut(u64, Vec<T>) -> Result<(Vec<T>, Fire), E> + Send + 'env>;

/// Data-parallel per-firing executor: like [`MapFn`] but pure enough to
/// run firings on a worker pool. Outputs are re-ordered to firing order
/// before being sent downstream, so execution stays deterministic.
pub type ParMapFn<'env, T, E> = Box<dyn Fn(u64, Vec<T>) -> Result<Vec<T>, E> + Send + Sync + 'env>;

/// Self-paced executor: drives its own receive/send loop through a
/// [`StageCtx`] (e.g. wrapping an external streaming API that owns its
/// chunking).
pub type StreamFn<'env, T, E> = Box<dyn FnOnce(&mut StageCtx<T>) -> Result<(), E> + Send + 'env>;

/// The executor bound to one stage of an [`ExecutablePlan`].
pub enum Binding<'env, T, E> {
    /// Fire serially, once per repetition-vector entry per iteration.
    Map(MapFn<'env, T, E>),
    /// Fire on up to `workers` pooled threads, preserving firing order
    /// on the output channels.
    ParMap {
        /// Worker-pool width (clamped to at least 1).
        workers: usize,
        /// The per-firing executor.
        f: ParMapFn<'env, T, E>,
    },
    /// The stage paces itself against its channels.
    Stream(StreamFn<'env, T, E>),
    /// A serial executor under a per-stage fault policy: the runtime
    /// retries, substitutes, or quarantines around every firing per the
    /// wrapped [`Supervision`] and [`Escalation`].
    Supervised(Box<Supervised<'env, T, E>>),
    /// A data-parallel executor under a fault policy: each firing
    /// retries on its worker per `policy`, then consults `recover`
    /// (per-firing recovery instead of the serial sticky escalation).
    SupervisedParMap {
        /// Worker-pool width (clamped to at least 1).
        workers: usize,
        /// The per-firing retry policy.
        policy: Supervision,
        /// The per-firing executor.
        f: SupervisedParFn<'env, T, E>,
        /// Per-firing recovery once the retry budget is spent; `None`
        /// behaves like [`Escalation::Abort`].
        recover: Option<RecoverFn<'env, T, E>>,
    },
    /// A self-paced executor with an optional fallback: if the primary
    /// stream errors, the fallback resumes on the same [`StageCtx`]
    /// (same channels, same counters) and the stage only faults if the
    /// fallback errors too.
    SupervisedStream {
        /// The primary self-paced executor.
        f: StreamFn<'env, T, E>,
        /// Resumes the stage after a primary error.
        fallback: Option<StreamFn<'env, T, E>>,
    },
}

/// Channel endpoints handed to a [`Binding::Stream`] executor, with
/// token counters for the run report.
pub struct StageCtx<T> {
    inputs: Vec<Receiver<T>>,
    outputs: Vec<SyncSender<T>>,
    received: u64,
    sent: u64,
}

impl<T> StageCtx<T> {
    /// Receives one token from the stage's first input channel;
    /// `None` once every upstream sender is gone and the buffer is
    /// drained.
    pub fn recv(&mut self) -> Option<T> {
        self.recv_from(0)
    }

    /// [`StageCtx::recv`] from input channel `input` (graph channel
    /// order among this stage's inputs).
    pub fn recv_from(&mut self, input: usize) -> Option<T> {
        match self.inputs.get(input)?.recv() {
            Ok(token) => {
                self.received += 1;
                Some(token)
            }
            Err(_) => None,
        }
    }

    /// Sends one token on the stage's first output channel; `false`
    /// when the consumer is gone (the stage should wind down).
    pub fn send(&mut self, token: T) -> bool {
        self.send_to(0, token)
    }

    /// [`StageCtx::send`] on output channel `output` (graph channel
    /// order among this stage's outputs).
    pub fn send_to(&mut self, output: usize, token: T) -> bool {
        let Some(tx) = self.outputs.get(output) else {
            return false;
        };
        match tx.send(token) {
            Ok(()) => {
                self.sent += 1;
                true
            }
            Err(_) => false,
        }
    }

    /// A draining iterator over input channel `input`; ends once every
    /// upstream sender is gone and the buffer is empty.
    pub fn input_iter(&mut self, input: usize) -> InputIter<'_, T> {
        InputIter {
            rx: self.inputs.get(input),
            count: &mut self.received,
        }
    }
}

/// Iterator over one input channel of a [`StageCtx`].
pub struct InputIter<'a, T> {
    rx: Option<&'a Receiver<T>>,
    count: &'a mut u64,
}

impl<T> Iterator for InputIter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        let token = self.rx?.recv().ok()?;
        *self.count += 1;
        Some(token)
    }
}

/// Why a [`run`] failed.
#[derive(Debug, PartialEq, Eq)]
pub enum RunError<E> {
    /// A stage executor returned an error.
    Stage {
        /// Stage index in graph order.
        stage: usize,
        /// The failing stage's declared name.
        name: String,
        /// The firing index that failed.
        firing: u64,
        /// Attempts spent on that firing before giving up (1 when the
        /// stage was unsupervised or the error was not retryable).
        attempts: u32,
        /// The executor's error.
        error: E,
    },
    /// A binding violated the declared rates (e.g. a `Map` executor
    /// returned the wrong number of tokens) or the binding list does
    /// not match the graph.
    Protocol {
        /// Stage index in graph order (`usize::MAX` for a plan-level
        /// mismatch).
        stage: usize,
        /// Human-readable description.
        message: String,
    },
}

impl<E: fmt::Display> fmt::Display for RunError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Stage {
                stage,
                name,
                firing,
                attempts,
                error,
            } => write!(
                f,
                "stage {stage} ({name}) failed at firing {firing} after {attempts} attempt(s): \
                 {error}"
            ),
            RunError::Protocol { stage, message } => {
                write!(f, "stage {stage} protocol violation: {message}")
            }
        }
    }
}

/// How one supervised firing attempt was resolved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// The firing will be retried after charging `backoff_s` to the
    /// simulated clock.
    Retried {
        /// Simulated backoff charged before the retry.
        backoff_s: f64,
    },
    /// The stage permanently swapped to its fallback executor.
    Substituted,
    /// The stage's quarantine handler re-bound it to a replacement
    /// executor.
    Rebound,
    /// No recovery remained: the stage aborts the run.
    Aborted,
}

/// One entry of a stage's fault trace: which firing faulted, on which
/// attempt, and what the supervisor did about it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Firing index of the faulted attempt.
    pub firing: u64,
    /// Zero-based attempt number that faulted.
    pub attempt: u32,
    /// How the supervisor resolved it.
    pub action: FaultAction,
}

/// Per-stage supervision counters and fault trace, reported in
/// [`RunReport::supervision`]. All-zero (and trace empty) for
/// unsupervised bindings and for supervised stages that never faulted.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StageSupervision {
    /// Executor errors observed (every failed attempt counts one).
    pub faults: u64,
    /// Attempts beyond the first, per firing, summed over the run.
    pub retries: u64,
    /// Total simulated backoff charged across all retries.
    pub backoff_s: f64,
    /// Permanent fallback swaps ([`Escalation::Substitute`] taken, or a
    /// parallel firing recovered by its [`RecoverFn`]).
    pub substitutions: u64,
    /// Quarantine re-binds ([`Escalation::Quarantine`] produced a
    /// replacement executor).
    pub rebinds: u64,
    /// The fault trace, in (firing, attempt) order.
    pub trace: Vec<FaultEvent>,
}

impl StageSupervision {
    /// True when the stage saw no faults at all.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.faults == 0 && self.trace.is_empty()
    }
}

/// What actually happened during a [`run`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Completed firings per stage, in graph order.
    pub firings: Vec<u64>,
    /// The iteration count the run was asked for.
    pub iterations: u64,
    /// Whether every stage met its full `repetition × iterations`
    /// target (false after a [`Fire::Stop`] or early teardown).
    pub completed: bool,
    /// Per-stage supervision counters and fault traces, in graph order.
    pub supervision: Vec<StageSupervision>,
}

impl RunReport {
    /// Measured analytic elapsed time of the run: per-iteration
    /// overhead plus the busiest resource's `Σ observed firings ×
    /// cost`. On a completed run this equals `iterations ×` the
    /// analyzer's critical path exactly (same arithmetic, same order).
    #[must_use]
    pub fn measured_elapsed_s(&self, graph: &SdfGraph) -> f64 {
        let longest = solve::resource_busy_s(graph, &self.firings)
            .into_iter()
            .fold(0.0f64, |acc, (_, busy)| acc.max(busy));
        graph.overhead_s() * self.iterations as f64 + longest
    }
}

/// One channel endpoint of a stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Port {
    /// Index into [`SdfGraph::channels`].
    pub channel: usize,
    /// Tokens this stage moves on the channel per firing (the consume
    /// rate for an input port, the produce rate for an output port).
    pub rate: usize,
}

/// The channel endpoints of one stage, each list in graph channel
/// order. This is the runtime's firing contract, factored out so the
/// model checker ([`crate::model_check`]) replays exactly the endpoint
/// layout and port order [`run`] wires with `sync_channel`s: a stage
/// collects its input ports in order ([`collect_inputs`]) and emits its
/// output ports in order ([`send_outputs`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StagePorts {
    /// Channels this stage consumes from, in graph channel order.
    pub inputs: Vec<Port>,
    /// Channels this stage produces to, in graph channel order.
    pub outputs: Vec<Port>,
}

/// The per-stage endpoint layout of a graph, in stage order.
#[must_use]
pub fn stage_ports(graph: &SdfGraph) -> Vec<StagePorts> {
    let mut ports: Vec<StagePorts> = vec![StagePorts::default(); graph.stages().len()];
    for (c, channel) in graph.channels().iter().enumerate() {
        ports[channel.from.index()].outputs.push(Port {
            channel: c,
            rate: channel.produce,
        });
        ports[channel.to.index()].inputs.push(Port {
            channel: c,
            rate: channel.consume,
        });
    }
    ports
}

/// Outcome of one stage thread.
struct StageOutcome<E> {
    firings: u64,
    fault: Option<Fault<E>>,
    supervision: StageSupervision,
}

enum Fault<E> {
    Stage {
        error: E,
        firing: u64,
        attempts: u32,
    },
    Protocol(String),
}

/// Channel endpoints of one stage, in graph channel order.
struct StageIo<T> {
    inputs: Vec<Receiver<T>>,
    in_rates: Vec<usize>,
    outputs: Vec<SyncSender<T>>,
    out_rates: Vec<usize>,
}

/// Executes a validated plan: one scoped thread per stage, bounded
/// channels sized from the plan, `repetition × iterations` firings per
/// `Map`/`ParMap` stage. Returns the per-stage firing counts, or the
/// first (lowest stage index) executor error.
pub fn run<'env, T, E>(
    plan: &ExecutablePlan,
    iterations: u64,
    bindings: Vec<Binding<'env, T, E>>,
) -> Result<RunReport, RunError<E>>
where
    T: Send + 'env,
    E: Send + 'env,
{
    let graph = plan.graph();
    let stage_count = graph.stages().len();
    if bindings.len() != stage_count {
        return Err(RunError::Protocol {
            stage: usize::MAX,
            message: format!(
                "{} bindings supplied for {} stages",
                bindings.len(),
                stage_count
            ),
        });
    }

    // Build one bounded channel per graph channel, then hand each stage
    // its endpoints in the shared [`stage_ports`] layout — the same
    // layout the model checker replays.
    type Endpoint<T> = (Option<SyncSender<T>>, Option<Receiver<T>>);
    let mut endpoints: Vec<Endpoint<T>> = graph
        .channels()
        .iter()
        .enumerate()
        .map(|(c, _)| {
            let (tx, rx) = sync_channel::<T>(plan.capacities()[c]);
            (Some(tx), Some(rx))
        })
        .collect();
    let ios: Vec<StageIo<T>> = stage_ports(graph)
        .into_iter()
        .map(|ports| StageIo {
            inputs: ports
                .inputs
                .iter()
                .map(|p| {
                    endpoints[p.channel]
                        .1
                        .take()
                        .expect("one consumer per channel")
                })
                .collect(),
            in_rates: ports.inputs.iter().map(|p| p.rate).collect(),
            outputs: ports
                .outputs
                .iter()
                .map(|p| {
                    endpoints[p.channel]
                        .0
                        .take()
                        .expect("one producer per channel")
                })
                .collect(),
            out_rates: ports.outputs.iter().map(|p| p.rate).collect(),
        })
        .collect();

    let outcomes: Vec<StageOutcome<E>> = thread::scope(|scope| {
        let handles: Vec<_> = bindings
            .into_iter()
            .zip(ios)
            .enumerate()
            .map(|(s, (binding, io))| {
                let target = plan.repetition()[s] * iterations;
                scope.spawn(move || run_stage(binding, io, target))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("schedule stage panicked"))
            .collect()
    });

    let mut firings = Vec::with_capacity(stage_count);
    let mut supervision = Vec::with_capacity(stage_count);
    let mut first_fault: Option<RunError<E>> = None;
    for (s, outcome) in outcomes.into_iter().enumerate() {
        firings.push(outcome.firings);
        supervision.push(outcome.supervision);
        if first_fault.is_none() {
            first_fault = outcome.fault.map(|fault| match fault {
                Fault::Stage {
                    error,
                    firing,
                    attempts,
                } => RunError::Stage {
                    stage: s,
                    name: graph.stages()[s].name.clone(),
                    firing,
                    attempts,
                    error,
                },
                Fault::Protocol(message) => RunError::Protocol { stage: s, message },
            });
        }
    }
    if let Some(err) = first_fault {
        return Err(err);
    }
    let completed = firings
        .iter()
        .zip(plan.repetition())
        .all(|(&fired, &reps)| fired == reps * iterations);
    Ok(RunReport {
        firings,
        iterations,
        completed,
        supervision,
    })
}

/// Runs one stage to completion on the current (scoped) thread.
fn run_stage<T: Send, E: Send>(
    binding: Binding<'_, T, E>,
    io: StageIo<T>,
    target: u64,
) -> StageOutcome<E> {
    match binding {
        Binding::Map(f) => run_map(f, io, target),
        Binding::ParMap { workers, f } => run_parmap(&f, io, target, workers),
        Binding::Stream(f) => run_stream(f, None, io),
        Binding::Supervised(sup) => run_supervised(*sup, io, target),
        Binding::SupervisedParMap {
            workers,
            policy,
            f,
            recover,
        } => run_supervised_parmap(&f, recover.as_deref(), policy, io, target, workers),
        Binding::SupervisedStream { f, fallback } => run_stream(f, fallback, io),
    }
}

/// Receives one firing's worth of input tokens, in channel order.
/// `None` when any upstream sender is gone (graceful wind-down).
fn collect_inputs<T>(io: &StageIo<T>) -> Option<Vec<T>> {
    let total: usize = io.in_rates.iter().sum();
    let mut inputs = Vec::with_capacity(total);
    for (rx, &rate) in io.inputs.iter().zip(&io.in_rates) {
        for _ in 0..rate {
            match rx.recv() {
                Ok(token) => inputs.push(token),
                Err(_) => return None,
            }
        }
    }
    Some(inputs)
}

/// Sends one firing's output tokens, in channel order. `false` when a
/// downstream receiver is gone.
fn send_outputs<T>(io: &StageIo<T>, outs: Vec<T>) -> bool {
    let mut it = outs.into_iter();
    for (tx, &rate) in io.outputs.iter().zip(&io.out_rates) {
        for _ in 0..rate {
            let Some(token) = it.next() else {
                return true; // Fire::Stop may legally under-produce.
            };
            if tx.send(token).is_err() {
                return false;
            }
        }
    }
    true
}

fn run_map<T: Send, E: Send>(
    mut f: MapFn<'_, T, E>,
    io: StageIo<T>,
    target: u64,
) -> StageOutcome<E> {
    let total_produce: usize = io.out_rates.iter().sum();
    let mut firings = 0u64;
    for firing in 0..target {
        let Some(inputs) = collect_inputs(&io) else {
            break;
        };
        match f(firing, inputs) {
            Ok((outs, fire)) => {
                let stop = matches!(fire, Fire::Stop);
                if outs.len() != total_produce && !(stop && outs.is_empty()) {
                    return StageOutcome {
                        firings,
                        fault: Some(Fault::Protocol(format!(
                            "executor returned {} token(s), the graph declares {total_produce}",
                            outs.len()
                        ))),
                        supervision: StageSupervision::default(),
                    };
                }
                firings += 1;
                if !send_outputs(&io, outs) || stop {
                    break;
                }
            }
            Err(error) => {
                return StageOutcome {
                    firings,
                    fault: Some(Fault::Stage {
                        error,
                        firing,
                        attempts: 1,
                    }),
                    supervision: StageSupervision::default(),
                };
            }
        }
    }
    StageOutcome {
        firings,
        fault: None,
        supervision: StageSupervision::default(),
    }
}

/// Runs one stage under a [`Supervision`] policy: per firing, attempt →
/// retry (within budget, retryable errors only) → escalate
/// (substitute / quarantine-rebind, each granting a fresh budget for the
/// same firing over the same inputs) → abort. Substitution is sticky —
/// the primary is never consulted again — while quarantine may re-bind
/// repeatedly, draining the stage across a pool of replacements.
fn run_supervised<T: Send, E: Send>(
    mut sup: Supervised<'_, T, E>,
    io: StageIo<T>,
    target: u64,
) -> StageOutcome<E> {
    let total_produce: usize = io.out_rates.iter().sum();
    let mut stats = StageSupervision::default();
    let mut firings = 0u64;
    'firing: for firing in 0..target {
        let Some(inputs) = collect_inputs(&io) else {
            break;
        };
        let mut attempt = 0u32;
        let mut backoff_s = 0.0f64;
        loop {
            let ctx = FiringCtx {
                firing,
                attempt,
                backoff_s,
                deadline_s: sup.policy.deadline_s,
            };
            match (sup.primary)(ctx, &inputs) {
                Ok((outs, fire)) => {
                    let stop = matches!(fire, Fire::Stop);
                    if outs.len() != total_produce && !(stop && outs.is_empty()) {
                        return StageOutcome {
                            firings,
                            fault: Some(Fault::Protocol(format!(
                                "executor returned {} token(s), the graph declares \
                                 {total_produce}",
                                outs.len()
                            ))),
                            supervision: stats,
                        };
                    }
                    firings += 1;
                    if !send_outputs(&io, outs) || stop {
                        break 'firing;
                    }
                    continue 'firing;
                }
                Err(error) => {
                    stats.faults += 1;
                    if attempt < sup.policy.max_retries && (sup.retryable)(&error) {
                        attempt += 1;
                        backoff_s = sup.policy.backoff_s(attempt);
                        stats.retries += 1;
                        stats.backoff_s += backoff_s;
                        stats.trace.push(FaultEvent {
                            firing,
                            attempt: attempt - 1,
                            action: FaultAction::Retried { backoff_s },
                        });
                        continue;
                    }
                    let attempts = attempt + 1;
                    // Take the escalation by value so a chosen fallback
                    // can move into `primary`; quarantine puts its
                    // handler back (it is reusable), substitute decays
                    // to abort (it is one-shot).
                    match std::mem::replace(&mut sup.escalation, Escalation::Abort) {
                        Escalation::Abort => {
                            stats.trace.push(FaultEvent {
                                firing,
                                attempt,
                                action: FaultAction::Aborted,
                            });
                            return StageOutcome {
                                firings,
                                fault: Some(Fault::Stage {
                                    error,
                                    firing,
                                    attempts,
                                }),
                                supervision: stats,
                            };
                        }
                        Escalation::Substitute(fallback) => {
                            sup.primary = fallback;
                            stats.substitutions += 1;
                            stats.trace.push(FaultEvent {
                                firing,
                                attempt,
                                action: FaultAction::Substituted,
                            });
                        }
                        Escalation::Quarantine(mut rebind) => {
                            match rebind(firing, attempts, &error) {
                                Some(replacement) => {
                                    sup.primary = replacement;
                                    sup.escalation = Escalation::Quarantine(rebind);
                                    stats.rebinds += 1;
                                    stats.trace.push(FaultEvent {
                                        firing,
                                        attempt,
                                        action: FaultAction::Rebound,
                                    });
                                }
                                None => {
                                    stats.trace.push(FaultEvent {
                                        firing,
                                        attempt,
                                        action: FaultAction::Aborted,
                                    });
                                    return StageOutcome {
                                        firings,
                                        fault: Some(Fault::Stage {
                                            error,
                                            firing,
                                            attempts,
                                        }),
                                        supervision: stats,
                                    };
                                }
                            }
                        }
                    }
                    // Fresh budget for the replacement executor; the
                    // same firing re-runs over the same inputs.
                    attempt = 0;
                    backoff_s = 0.0;
                }
            }
        }
    }
    StageOutcome {
        firings,
        fault: None,
        supervision: stats,
    }
}

fn run_parmap<T: Send, E: Send>(
    f: &ParMapFn<'_, T, E>,
    io: StageIo<T>,
    target: u64,
    workers: usize,
) -> StageOutcome<E> {
    let workers = workers.max(1).min(target.max(1) as usize);
    let total_produce: usize = io.out_rates.iter().sum();
    // Every worker queue holds its full share of jobs and results, so
    // dispatch and collection can run strictly in sequence without
    // blocking each other.
    let per_worker = (target as usize).div_ceil(workers).max(1);

    thread::scope(|scope| {
        let mut job_txs = Vec::with_capacity(workers);
        let mut result_rxs = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (job_tx, job_rx) = sync_channel::<(u64, Vec<T>)>(per_worker);
            let (result_tx, result_rx) = sync_channel::<Result<Vec<T>, E>>(per_worker);
            scope.spawn(move || {
                for (firing, inputs) in job_rx {
                    if result_tx.send(f(firing, inputs)).is_err() {
                        break;
                    }
                }
            });
            job_txs.push(job_tx);
            result_rxs.push(result_rx);
        }

        let mut dispatched = 0u64;
        for firing in 0..target {
            let Some(inputs) = collect_inputs(&io) else {
                break;
            };
            if job_txs[(firing as usize) % workers]
                .send((firing, inputs))
                .is_err()
            {
                break;
            }
            dispatched += 1;
        }
        drop(job_txs);

        // Workers answer their queues in dispatch order, so pulling
        // worker (firing % workers) reassembles strict firing order.
        let mut firings = 0u64;
        for firing in 0..dispatched {
            match result_rxs[(firing as usize) % workers].recv() {
                Ok(Ok(outs)) => {
                    if outs.len() != total_produce {
                        return StageOutcome {
                            firings,
                            fault: Some(Fault::Protocol(format!(
                                "executor returned {} token(s), the graph declares \
                                 {total_produce}",
                                outs.len()
                            ))),
                            supervision: StageSupervision::default(),
                        };
                    }
                    firings += 1;
                    if !send_outputs(&io, outs) {
                        break;
                    }
                }
                Ok(Err(error)) => {
                    return StageOutcome {
                        firings,
                        fault: Some(Fault::Stage {
                            error,
                            firing,
                            attempts: 1,
                        }),
                        supervision: StageSupervision::default(),
                    };
                }
                Err(_) => break,
            }
        }
        StageOutcome {
            firings,
            fault: None,
            supervision: StageSupervision::default(),
        }
    })
}

/// Per-firing supervised work item outcome, reassembled in firing
/// order by the collector.
type ParItem<T, E> = Result<Vec<T>, (E, u32)>;

/// Borrowed form of [`RecoverFn`], as consulted by the worker loop.
type RecoverRef<'a, T, E> =
    &'a (dyn Fn(u64, u32, &E, &[T]) -> Option<Result<Vec<T>, E>> + Send + Sync);

/// Runs a data-parallel stage under a [`Supervision`] policy. Each
/// firing retries on its worker with the policy's budget (all errors
/// retryable); once spent, the optional [`RecoverFn`] is consulted
/// per firing — parallel firings are independent work items, so
/// recovery of one never degrades its siblings (contrast the serial
/// stage's sticky [`Escalation`]). Stats from the workers aggregate
/// under a mutex and the trace is sorted to (firing, attempt) order,
/// keeping the report deterministic regardless of interleaving.
fn run_supervised_parmap<T: Send, E: Send>(
    f: &SupervisedParFn<'_, T, E>,
    recover: Option<RecoverRef<'_, T, E>>,
    policy: Supervision,
    io: StageIo<T>,
    target: u64,
    workers: usize,
) -> StageOutcome<E> {
    let workers = workers.max(1).min(target.max(1) as usize);
    let total_produce: usize = io.out_rates.iter().sum();
    let per_worker = (target as usize).div_ceil(workers).max(1);
    let shared_stats = std::sync::Mutex::new(StageSupervision::default());

    let (firings, fault) = thread::scope(|scope| {
        let mut job_txs = Vec::with_capacity(workers);
        let mut result_rxs = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (job_tx, job_rx) = sync_channel::<(u64, Vec<T>)>(per_worker);
            let (result_tx, result_rx) = sync_channel::<ParItem<T, E>>(per_worker);
            let shared_stats = &shared_stats;
            scope.spawn(move || {
                for (firing, inputs) in job_rx {
                    let mut attempt = 0u32;
                    let mut backoff_s = 0.0f64;
                    let item: ParItem<T, E> = loop {
                        let ctx = FiringCtx {
                            firing,
                            attempt,
                            backoff_s,
                            deadline_s: policy.deadline_s,
                        };
                        match f(ctx, &inputs) {
                            Ok(outs) => break Ok(outs),
                            Err(error) => {
                                let mut stats = shared_stats.lock().expect("stats mutex");
                                stats.faults += 1;
                                if attempt < policy.max_retries {
                                    attempt += 1;
                                    backoff_s = policy.backoff_s(attempt);
                                    stats.retries += 1;
                                    stats.backoff_s += backoff_s;
                                    stats.trace.push(FaultEvent {
                                        firing,
                                        attempt: attempt - 1,
                                        action: FaultAction::Retried { backoff_s },
                                    });
                                    continue;
                                }
                                let attempts = attempt + 1;
                                // Release the stats lock while recovery
                                // runs: a host retrain can be slow and
                                // sibling workers may fault meanwhile.
                                drop(stats);
                                let recovered =
                                    recover.and_then(|r| r(firing, attempts, &error, &inputs));
                                let mut stats = shared_stats.lock().expect("stats mutex");
                                match recovered {
                                    Some(Ok(outs)) => {
                                        stats.substitutions += 1;
                                        stats.trace.push(FaultEvent {
                                            firing,
                                            attempt,
                                            action: FaultAction::Substituted,
                                        });
                                        break Ok(outs);
                                    }
                                    Some(Err(replacement_error)) => {
                                        stats.trace.push(FaultEvent {
                                            firing,
                                            attempt,
                                            action: FaultAction::Aborted,
                                        });
                                        break Err((replacement_error, attempts));
                                    }
                                    None => {
                                        stats.trace.push(FaultEvent {
                                            firing,
                                            attempt,
                                            action: FaultAction::Aborted,
                                        });
                                        break Err((error, attempts));
                                    }
                                }
                            }
                        }
                    };
                    if result_tx.send(item).is_err() {
                        break;
                    }
                }
            });
            job_txs.push(job_tx);
            result_rxs.push(result_rx);
        }

        let mut dispatched = 0u64;
        for firing in 0..target {
            let Some(inputs) = collect_inputs(&io) else {
                break;
            };
            if job_txs[(firing as usize) % workers]
                .send((firing, inputs))
                .is_err()
            {
                break;
            }
            dispatched += 1;
        }
        drop(job_txs);

        let mut firings = 0u64;
        for firing in 0..dispatched {
            match result_rxs[(firing as usize) % workers].recv() {
                Ok(Ok(outs)) => {
                    if outs.len() != total_produce {
                        return (
                            firings,
                            Some(Fault::Protocol(format!(
                                "executor returned {} token(s), the graph declares \
                                 {total_produce}",
                                outs.len()
                            ))),
                        );
                    }
                    firings += 1;
                    if !send_outputs(&io, outs) {
                        break;
                    }
                }
                Ok(Err((error, attempts))) => {
                    return (
                        firings,
                        Some(Fault::Stage {
                            error,
                            firing,
                            attempts,
                        }),
                    );
                }
                Err(_) => break,
            }
        }
        (firings, None)
    });

    let mut stats = shared_stats.into_inner().expect("stats mutex");
    stats
        .trace
        .sort_by_key(|event| (event.firing, event.attempt));
    StageOutcome {
        firings,
        fault,
        supervision: stats,
    }
}

fn run_stream<T: Send, E: Send>(
    f: StreamFn<'_, T, E>,
    fallback: Option<StreamFn<'_, T, E>>,
    io: StageIo<T>,
) -> StageOutcome<E> {
    let consume_per_firing: usize = io.in_rates.iter().sum();
    let produce_per_firing: usize = io.out_rates.iter().sum();
    let mut ctx = StageCtx {
        inputs: io.inputs,
        outputs: io.outputs,
        received: 0,
        sent: 0,
    };
    let mut stats = StageSupervision::default();
    let infer_firings = |ctx: &StageCtx<T>| {
        // A stream stage's firing count is inferred from the tokens it
        // actually moved relative to the declared per-firing rates.
        let from_in = if consume_per_firing > 0 {
            ctx.received / consume_per_firing as u64
        } else {
            0
        };
        let from_out = if produce_per_firing > 0 {
            ctx.sent / produce_per_firing as u64
        } else {
            0
        };
        from_in.max(from_out)
    };
    let fault = match f(&mut ctx) {
        Ok(()) => None,
        Err(error) => {
            stats.faults += 1;
            match fallback {
                // The fallback resumes on the same StageCtx: channels
                // stay open and the token counters keep accumulating,
                // so everything the primary already moved stands.
                Some(fb) => {
                    stats.substitutions += 1;
                    stats.trace.push(FaultEvent {
                        firing: infer_firings(&ctx),
                        attempt: 0,
                        action: FaultAction::Substituted,
                    });
                    match fb(&mut ctx) {
                        Ok(()) => None,
                        Err(error) => {
                            stats.faults += 1;
                            let firing = infer_firings(&ctx);
                            stats.trace.push(FaultEvent {
                                firing,
                                attempt: 1,
                                action: FaultAction::Aborted,
                            });
                            Some(Fault::Stage {
                                error,
                                firing,
                                attempts: 2,
                            })
                        }
                    }
                }
                None => {
                    let firing = infer_firings(&ctx);
                    Some(Fault::Stage {
                        error,
                        firing,
                        attempts: 1,
                    })
                }
            }
        }
    };
    StageOutcome {
        firings: infer_firings(&ctx),
        fault,
        supervision: stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Resource, SdfGraph};
    use std::convert::Infallible;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    fn unit_chain(cap: usize) -> SdfGraph {
        let mut g = SdfGraph::new("chain").with_overhead_s(1e-3);
        let a = g.add_stage("produce", Resource::LINK, 2e-3);
        let b = g.add_stage("work", Resource::DEVICE, 5e-3);
        let c = g.add_stage("consume", Resource::LINK, 1e-3);
        g.add_channel(a, b, 1, 1, Some(cap));
        g.add_channel(b, c, 1, 1, Some(cap));
        g
    }

    #[test]
    fn validate_rejects_undersized_and_accepts_minimal() {
        let err = ExecutablePlan::validate(unit_chain(0)).unwrap_err();
        assert!(matches!(
            err,
            PlanError::Undersized {
                declared: 0,
                minimum: 1,
                ..
            }
        ));
        let plan = ExecutablePlan::validate(unit_chain(2)).unwrap();
        assert_eq!(plan.repetition(), &[1, 1, 1]);
        assert_eq!(plan.capacities(), &[2, 2]);
    }

    #[test]
    fn validate_sizes_unbounded_channels_at_the_minimum() {
        let mut g = SdfGraph::new("unbounded");
        let a = g.add_stage("a", Resource::Host, 0.0);
        let b = g.add_stage("b", Resource::Host, 0.0);
        g.add_channel(a, b, 3, 2, None);
        let plan = ExecutablePlan::validate(g).unwrap();
        // 3 + 2 - gcd(3,2) = 4.
        assert_eq!(plan.capacities(), &[4]);
    }

    #[test]
    fn map_chain_runs_all_firings_in_order() {
        let plan = ExecutablePlan::validate(unit_chain(2)).unwrap();
        let seen = Mutex::new(Vec::new());
        let bindings: Vec<Binding<'_, u64, Infallible>> = vec![
            Binding::Map(Box::new(|firing, _| {
                Ok((vec![firing * 10], Fire::Continue))
            })),
            Binding::Map(Box::new(|_, inputs| {
                Ok((vec![inputs[0] + 1], Fire::Continue))
            })),
            Binding::Map(Box::new(|_, inputs| {
                seen.lock().unwrap().push(inputs[0]);
                Ok((vec![], Fire::Continue))
            })),
        ];
        let report = run(&plan, 5, bindings).unwrap();
        assert!(report.completed);
        assert_eq!(report.firings, vec![5, 5, 5]);
        assert_eq!(*seen.lock().unwrap(), vec![1, 11, 21, 31, 41]);
        // Completed run: measured elapsed == iterations × critical path.
        let predicted = 5.0 * solve::critical_path_s(plan.graph(), plan.repetition());
        assert!((report.measured_elapsed_s(plan.graph()) - predicted).abs() < 1e-15);
    }

    #[test]
    fn parmap_preserves_firing_order() {
        let mut g = SdfGraph::new("fan");
        let src = g.add_stage("src", Resource::Host, 0.0);
        let work = g.add_stage("work", Resource::Host, 1.0);
        let sink = g.add_stage("sink", Resource::Host, 0.0);
        g.add_channel(src, work, 1, 1, Some(8));
        g.add_channel(work, sink, 1, 1, Some(8));
        let plan = ExecutablePlan::validate(g).unwrap();
        let seen = Mutex::new(Vec::new());
        let bindings: Vec<Binding<'_, u64, Infallible>> = vec![
            Binding::Map(Box::new(|firing, _| Ok((vec![firing], Fire::Continue)))),
            Binding::ParMap {
                workers: 4,
                f: Box::new(|_, inputs| Ok(vec![inputs[0] * 2])),
            },
            Binding::Map(Box::new(|_, inputs| {
                seen.lock().unwrap().push(inputs[0]);
                Ok((vec![], Fire::Continue))
            })),
        ];
        let report = run(&plan, 16, bindings).unwrap();
        assert!(report.completed);
        assert_eq!(
            *seen.lock().unwrap(),
            (0..16).map(|i| i * 2).collect::<Vec<u64>>()
        );
    }

    #[test]
    fn stage_error_tears_down_and_reports_lowest_stage() {
        let plan = ExecutablePlan::validate(unit_chain(2)).unwrap();
        let bindings: Vec<Binding<'_, u64, &'static str>> = vec![
            Binding::Map(Box::new(|firing, _| Ok((vec![firing], Fire::Continue)))),
            Binding::Map(Box::new(|firing, inputs| {
                if firing == 3 {
                    Err("device fault")
                } else {
                    Ok((vec![inputs[0]], Fire::Continue))
                }
            })),
            Binding::Map(Box::new(|_, _| Ok((vec![], Fire::Continue)))),
        ];
        let err = run(&plan, 10, bindings).unwrap_err();
        assert_eq!(
            err,
            RunError::Stage {
                stage: 1,
                name: "work".to_string(),
                firing: 3,
                attempts: 1,
                error: "device fault"
            }
        );
        assert_eq!(
            err.to_string(),
            "stage 1 (work) failed at firing 3 after 1 attempt(s): device fault"
        );
    }

    #[test]
    fn supervised_retries_within_budget_to_success() {
        let plan = ExecutablePlan::validate(unit_chain(2)).unwrap();
        let attempts_seen = AtomicU64::new(0);
        let bindings: Vec<Binding<'_, u64, &'static str>> = vec![
            Binding::Map(Box::new(|firing, _| Ok((vec![firing], Fire::Continue)))),
            Supervised::map(
                Supervision::retries(3, 1e-3, 2.0),
                |ctx: FiringCtx, inputs| {
                    if ctx.firing == 2 && ctx.attempt < 2 {
                        attempts_seen.fetch_add(1, Ordering::SeqCst);
                        Err("transient fault")
                    } else {
                        Ok((vec![inputs[0] * 10], Fire::Continue))
                    }
                },
            )
            .into_binding(),
            Binding::Map(Box::new(|_, _| Ok((vec![], Fire::Continue)))),
        ];
        let report = run(&plan, 5, bindings).unwrap();
        assert!(report.completed);
        assert_eq!(report.firings, vec![5, 5, 5]);
        let sup = &report.supervision[1];
        assert_eq!(sup.faults, 2);
        assert_eq!(sup.retries, 2);
        // backoff: base·1 + base·2 = 3e-3, exactly.
        assert!((sup.backoff_s - 3e-3).abs() < 1e-15);
        assert_eq!(sup.substitutions, 0);
        assert_eq!(sup.rebinds, 0);
        assert_eq!(
            sup.trace,
            vec![
                FaultEvent {
                    firing: 2,
                    attempt: 0,
                    action: FaultAction::Retried { backoff_s: 1e-3 }
                },
                FaultEvent {
                    firing: 2,
                    attempt: 1,
                    action: FaultAction::Retried { backoff_s: 2e-3 }
                },
            ]
        );
        // Unsupervised neighbours report clean all-zero supervision.
        assert!(report.supervision[0].is_clean());
        assert!(report.supervision[2].is_clean());
    }

    #[test]
    fn supervised_budget_exhaustion_aborts_with_firing_and_attempts() {
        let plan = ExecutablePlan::validate(unit_chain(2)).unwrap();
        let bindings: Vec<Binding<'_, u64, &'static str>> = vec![
            Binding::Map(Box::new(|firing, _| Ok((vec![firing], Fire::Continue)))),
            Supervised::map(Supervision::retries(2, 1e-3, 2.0), |ctx: FiringCtx, _| {
                if ctx.firing == 1 {
                    Err("dead device")
                } else {
                    Ok((vec![0], Fire::Continue))
                }
            })
            .into_binding(),
            Binding::Map(Box::new(|_, _| Ok((vec![], Fire::Continue)))),
        ];
        let err = run(&plan, 4, bindings).unwrap_err();
        assert_eq!(
            err,
            RunError::Stage {
                stage: 1,
                name: "work".to_string(),
                firing: 1,
                attempts: 3,
                error: "dead device"
            }
        );
    }

    #[test]
    fn supervised_non_retryable_error_skips_the_budget() {
        let plan = ExecutablePlan::validate(unit_chain(2)).unwrap();
        let bindings: Vec<Binding<'_, u64, &'static str>> = vec![
            Binding::Map(Box::new(|firing, _| Ok((vec![firing], Fire::Continue)))),
            Supervised::map(Supervision::retries(5, 1e-3, 2.0), |ctx: FiringCtx, _| {
                if ctx.firing == 0 {
                    Err("config error")
                } else {
                    Ok((vec![0], Fire::Continue))
                }
            })
            .retry_when(|e: &&'static str| *e != "config error")
            .into_binding(),
            Binding::Map(Box::new(|_, _| Ok((vec![], Fire::Continue)))),
        ];
        let err = run(&plan, 2, bindings).unwrap_err();
        assert_eq!(
            err,
            RunError::Stage {
                stage: 1,
                name: "work".to_string(),
                firing: 0,
                attempts: 1,
                error: "config error"
            }
        );
    }

    #[test]
    fn supervised_substitute_swaps_permanently_and_rereuns_the_firing() {
        let plan = ExecutablePlan::validate(unit_chain(2)).unwrap();
        let primary_calls = AtomicU64::new(0);
        let seen = Mutex::new(Vec::new());
        let bindings: Vec<Binding<'_, u64, &'static str>> = vec![
            Binding::Map(Box::new(|firing, _| Ok((vec![firing], Fire::Continue)))),
            Supervised::map(Supervision::none(), |ctx: FiringCtx, inputs| {
                primary_calls.fetch_add(1, Ordering::SeqCst);
                if ctx.firing >= 2 {
                    Err("device quarantined")
                } else {
                    Ok((vec![inputs[0] * 10], Fire::Continue))
                }
            })
            .or_substitute(|_ctx: FiringCtx, inputs: &[u64]| {
                // Host fallback: same arithmetic, different executor.
                Ok((vec![inputs[0] * 10], Fire::Continue))
            })
            .into_binding(),
            Binding::Map(Box::new(|_, inputs| {
                seen.lock().unwrap().push(inputs[0]);
                Ok((vec![], Fire::Continue))
            })),
        ];
        let report = run(&plan, 6, bindings).unwrap();
        assert!(report.completed);
        // The failed firing re-ran on the fallback over the same
        // inputs: no token lost, bit-exact sequence.
        assert_eq!(*seen.lock().unwrap(), vec![0, 10, 20, 30, 40, 50]);
        // Substitution is sticky: primary consulted for firings 0, 1
        // and the failed attempt at 2, never again.
        assert_eq!(primary_calls.load(Ordering::SeqCst), 3);
        let sup = &report.supervision[1];
        assert_eq!(sup.faults, 1);
        assert_eq!(sup.substitutions, 1);
        assert_eq!(
            sup.trace,
            vec![FaultEvent {
                firing: 2,
                attempt: 0,
                action: FaultAction::Substituted
            }]
        );
    }

    #[test]
    fn supervised_quarantine_rebinds_through_a_pool_then_aborts() {
        let plan = ExecutablePlan::validate(unit_chain(2)).unwrap();
        // Two healthy siblings; each replacement executor dies two
        // firings after taking over, driving repeated re-binds until
        // the pool is exhausted and the handler returns None.
        let bindings: Vec<Binding<'_, u64, &'static str>> = vec![
            Binding::Map(Box::new(|firing, _| Ok((vec![firing], Fire::Continue)))),
            Supervised::map(Supervision::none(), |ctx: FiringCtx, _| {
                if ctx.firing >= 2 {
                    Err("device 0 down")
                } else {
                    Ok((vec![0], Fire::Continue))
                }
            })
            .or_quarantine({
                let mut siblings = 2u64;
                move |rebind_at, attempts, _e: &&'static str| {
                    assert_eq!(attempts, 1, "Supervision::none escalates on attempt 1");
                    if siblings == 0 {
                        return None;
                    }
                    siblings -= 1;
                    let die_at = rebind_at + 2;
                    Some(Box::new(move |ctx: FiringCtx, _inputs: &[u64]| {
                        if ctx.firing >= die_at {
                            Err("sibling down")
                        } else {
                            Ok((vec![0u64], Fire::Continue))
                        }
                    })
                        as SupervisedFn<'_, u64, &'static str>)
                }
            })
            .into_binding(),
            Binding::Map(Box::new(|_, _| Ok((vec![], Fire::Continue)))),
        ];
        let err = run(&plan, 10, bindings).unwrap_err();
        // Device 0 dies at firing 2, sibling A at 4, sibling B at 6;
        // pool exhausted there.
        assert_eq!(
            err,
            RunError::Stage {
                stage: 1,
                name: "work".to_string(),
                firing: 6,
                attempts: 1,
                error: "sibling down"
            }
        );
    }

    #[test]
    fn supervised_quarantine_rebind_counters_appear_in_the_report() {
        let plan = ExecutablePlan::validate(unit_chain(2)).unwrap();
        let seen = Mutex::new(Vec::new());
        let bindings: Vec<Binding<'_, u64, &'static str>> = vec![
            Binding::Map(Box::new(|firing, _| Ok((vec![firing], Fire::Continue)))),
            Supervised::map(Supervision::none(), |ctx: FiringCtx, inputs| {
                if ctx.firing >= 1 {
                    Err("device 0 down")
                } else {
                    Ok((vec![inputs[0] + 100], Fire::Continue))
                }
            })
            .or_quarantine(|_f, _a, _e: &&'static str| {
                Some(Box::new(|_ctx: FiringCtx, inputs: &[u64]| {
                    Ok((vec![inputs[0] + 100], Fire::Continue))
                }) as SupervisedFn<'_, u64, &'static str>)
            })
            .into_binding(),
            Binding::Map(Box::new(|_, inputs| {
                seen.lock().unwrap().push(inputs[0]);
                Ok((vec![], Fire::Continue))
            })),
        ];
        let report = run(&plan, 4, bindings).unwrap();
        assert!(report.completed);
        assert_eq!(*seen.lock().unwrap(), vec![100, 101, 102, 103]);
        let sup = &report.supervision[1];
        assert_eq!(sup.faults, 1);
        assert_eq!(sup.rebinds, 1);
        assert_eq!(sup.substitutions, 0);
        assert_eq!(
            sup.trace,
            vec![FaultEvent {
                firing: 1,
                attempt: 0,
                action: FaultAction::Rebound
            }]
        );
    }

    #[test]
    fn supervised_parmap_recovers_firings_independently() {
        let mut g = SdfGraph::new("fan");
        let src = g.add_stage("src", Resource::Host, 0.0);
        let work = g.add_stage("work", Resource::Host, 1.0);
        let sink = g.add_stage("sink", Resource::Host, 0.0);
        g.add_channel(src, work, 1, 1, Some(8));
        g.add_channel(work, sink, 1, 1, Some(8));
        let plan = ExecutablePlan::validate(g).unwrap();
        let seen = Mutex::new(Vec::new());
        let bindings: Vec<Binding<'_, u64, &'static str>> = vec![
            Binding::Map(Box::new(|firing, _| Ok((vec![firing], Fire::Continue)))),
            Binding::SupervisedParMap {
                workers: 4,
                policy: Supervision::retries(1, 1e-3, 2.0),
                f: Box::new(|ctx: FiringCtx, inputs: &[u64]| {
                    // Firing 3 always fails; firing 5 heals on retry.
                    if ctx.firing == 3 || (ctx.firing == 5 && ctx.attempt == 0) {
                        Err("member fault")
                    } else {
                        Ok(vec![inputs[0] * 2])
                    }
                }),
                recover: Some(Box::new(|firing, attempts, _e, inputs: &[u64]| {
                    assert_eq!(firing, 3);
                    assert_eq!(attempts, 2);
                    // Host retrain stands in for the dead member.
                    Some(Ok(vec![inputs[0] * 2]))
                })),
            },
            Binding::Map(Box::new(|_, inputs| {
                seen.lock().unwrap().push(inputs[0]);
                Ok((vec![], Fire::Continue))
            })),
        ];
        let report = run(&plan, 12, bindings).unwrap();
        assert!(report.completed);
        assert_eq!(
            *seen.lock().unwrap(),
            (0..12).map(|i| i * 2).collect::<Vec<u64>>()
        );
        let sup = &report.supervision[1];
        // Firing 3: fault, retry-fault, recovered. Firing 5: fault,
        // retry succeeds.
        assert_eq!(sup.faults, 3);
        assert_eq!(sup.retries, 2);
        assert_eq!(sup.substitutions, 1);
        assert_eq!(
            sup.trace,
            vec![
                FaultEvent {
                    firing: 3,
                    attempt: 0,
                    action: FaultAction::Retried { backoff_s: 1e-3 }
                },
                FaultEvent {
                    firing: 3,
                    attempt: 1,
                    action: FaultAction::Substituted
                },
                FaultEvent {
                    firing: 5,
                    attempt: 0,
                    action: FaultAction::Retried { backoff_s: 1e-3 }
                },
            ]
        );
    }

    #[test]
    fn supervised_parmap_without_recovery_aborts_with_attempts() {
        let mut g = SdfGraph::new("fan");
        let src = g.add_stage("src", Resource::Host, 0.0);
        let work = g.add_stage("work", Resource::Host, 1.0);
        let sink = g.add_stage("sink", Resource::Host, 0.0);
        g.add_channel(src, work, 1, 1, Some(8));
        g.add_channel(work, sink, 1, 1, Some(8));
        let plan = ExecutablePlan::validate(g).unwrap();
        let bindings: Vec<Binding<'_, u64, &'static str>> = vec![
            Binding::Map(Box::new(|firing, _| Ok((vec![firing], Fire::Continue)))),
            Binding::SupervisedParMap {
                workers: 2,
                policy: Supervision::retries(2, 1e-3, 2.0),
                f: Box::new(|ctx: FiringCtx, inputs: &[u64]| {
                    if ctx.firing == 4 {
                        Err("member fault")
                    } else {
                        Ok(vec![inputs[0]])
                    }
                }),
                recover: None,
            },
            Binding::Map(Box::new(|_, _| Ok((vec![], Fire::Continue)))),
        ];
        let err = run(&plan, 8, bindings).unwrap_err();
        assert_eq!(
            err,
            RunError::Stage {
                stage: 1,
                name: "work".to_string(),
                firing: 4,
                attempts: 3,
                error: "member fault"
            }
        );
    }

    #[test]
    fn supervised_stream_fallback_resumes_on_the_same_channels() {
        let mut g = SdfGraph::new("stream");
        let enc = g.add_stage("encode", Resource::DEVICE, 3e-3);
        let upd = g.add_stage("update", Resource::Host, 1e-3);
        g.add_channel(enc, upd, 1, 1, Some(2));
        let plan = ExecutablePlan::validate(g).unwrap();
        let total = Mutex::new(0u64);
        let bindings: Vec<Binding<'_, u64, &'static str>> = vec![
            Binding::SupervisedStream {
                f: Box::new(|ctx| {
                    // Device stream dies after three chunks.
                    for v in 0..3u64 {
                        if !ctx.send(v) {
                            break;
                        }
                    }
                    Err("device stream fault")
                }),
                fallback: Some(Box::new(|ctx| {
                    // Host picks up exactly where the device stopped.
                    for v in 3..7u64 {
                        if !ctx.send(v) {
                            break;
                        }
                    }
                    Ok(())
                })),
            },
            Binding::Stream(Box::new(|ctx| {
                let mut sum = 0;
                for v in ctx.input_iter(0) {
                    sum += v;
                }
                *total.lock().unwrap() = sum;
                Ok(())
            })),
        ];
        let report = run(&plan, 7, bindings).unwrap();
        assert_eq!(*total.lock().unwrap(), 21);
        assert_eq!(report.firings, vec![7, 7]);
        assert!(report.completed);
        let sup = &report.supervision[0];
        assert_eq!(sup.faults, 1);
        assert_eq!(sup.substitutions, 1);
    }

    #[test]
    fn stop_drains_tokens_already_produced() {
        let plan = ExecutablePlan::validate(unit_chain(2)).unwrap();
        let delivered = AtomicU64::new(0);
        let bindings: Vec<Binding<'_, u64, Infallible>> = vec![
            Binding::Map(Box::new(|firing, _| Ok((vec![firing], Fire::Continue)))),
            Binding::Map(Box::new(|firing, inputs| {
                if firing == 4 {
                    // Simulates a circuit breaker opening mid-run.
                    Ok((vec![], Fire::Stop))
                } else {
                    Ok((vec![inputs[0]], Fire::Continue))
                }
            })),
            Binding::Map(Box::new(|_, _| {
                delivered.fetch_add(1, Ordering::SeqCst);
                Ok((vec![], Fire::Continue))
            })),
        ];
        let report = run(&plan, 10, bindings).unwrap();
        assert!(!report.completed);
        // Firings 0..=3 produced tokens; all four must reach the sink.
        assert_eq!(delivered.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn stream_stages_pace_themselves() {
        let mut g = SdfGraph::new("stream");
        let enc = g.add_stage("encode", Resource::DEVICE, 3e-3);
        let upd = g.add_stage("update", Resource::Host, 1e-3);
        g.add_channel(enc, upd, 1, 1, Some(2));
        let plan = ExecutablePlan::validate(g).unwrap();
        let total = Mutex::new(0u64);
        let bindings: Vec<Binding<'_, u64, Infallible>> = vec![
            Binding::Stream(Box::new(|ctx| {
                for v in 0..7u64 {
                    if !ctx.send(v) {
                        break;
                    }
                }
                Ok(())
            })),
            Binding::Stream(Box::new(|ctx| {
                let mut sum = 0;
                for v in ctx.input_iter(0) {
                    sum += v;
                }
                *total.lock().unwrap() = sum;
                Ok(())
            })),
        ];
        let report = run(&plan, 7, bindings).unwrap();
        assert_eq!(*total.lock().unwrap(), 21);
        assert_eq!(report.firings, vec![7, 7]);
        assert!(report.completed);
    }

    #[test]
    fn wrong_token_count_is_a_protocol_error() {
        let plan = ExecutablePlan::validate(unit_chain(2)).unwrap();
        let bindings: Vec<Binding<'_, u64, Infallible>> = vec![
            Binding::Map(Box::new(|_, _| Ok((vec![1, 2], Fire::Continue)))),
            Binding::Map(Box::new(|_, inputs| Ok((vec![inputs[0]], Fire::Continue)))),
            Binding::Map(Box::new(|_, _| Ok((vec![], Fire::Continue)))),
        ];
        let err = run(&plan, 1, bindings).unwrap_err();
        assert!(matches!(err, RunError::Protocol { stage: 0, .. }));
    }

    #[test]
    fn binding_count_mismatch_is_rejected_up_front() {
        let plan = ExecutablePlan::validate(unit_chain(2)).unwrap();
        let bindings: Vec<Binding<'_, u64, Infallible>> =
            vec![Binding::Map(Box::new(|_, _| Ok((vec![], Fire::Continue))))];
        assert!(matches!(
            run(&plan, 1, bindings),
            Err(RunError::Protocol { .. })
        ));
    }

    #[test]
    fn zero_iterations_is_a_clean_noop() {
        let plan = ExecutablePlan::validate(unit_chain(2)).unwrap();
        let bindings: Vec<Binding<'_, u64, Infallible>> = vec![
            Binding::Map(Box::new(|firing, _| Ok((vec![firing], Fire::Continue)))),
            Binding::Map(Box::new(|_, inputs| Ok((vec![inputs[0]], Fire::Continue)))),
            Binding::Map(Box::new(|_, _| Ok((vec![], Fire::Continue)))),
        ];
        let report = run(&plan, 0, bindings).unwrap();
        assert!(report.completed);
        assert_eq!(report.firings, vec![0, 0, 0]);
    }
}
