//! The device is a shared resource: invocations from multiple host
//! threads must serialize safely and produce exactly the single-threaded
//! results (a real single-queue accelerator behind a driver lock).

use std::sync::Arc;

use hd_tensor::rng::DetRng;
use hd_tensor::Matrix;
use tpu_sim::{Device, DeviceConfig};
use wide_nn::{compile, Activation, ModelBuilder, TargetSpec};

fn loaded_device() -> (Arc<Device>, Matrix) {
    let mut rng = DetRng::new(71);
    let model = ModelBuilder::new(24)
        .fully_connected(Matrix::random_normal(24, 96, &mut rng))
        .unwrap()
        .activation(Activation::Tanh)
        .fully_connected(Matrix::random_normal(96, 4, &mut rng))
        .unwrap()
        .build()
        .unwrap();
    let batch = Matrix::random_normal(12, 24, &mut rng);
    let compiled = compile::compile(&model, &batch, &TargetSpec::default()).unwrap();
    let device = Arc::new(Device::new(DeviceConfig::default()));
    device.load_model(compiled).unwrap();
    (device, batch)
}

#[test]
fn concurrent_invocations_match_serial_results() {
    let (device, batch) = loaded_device();
    let (expected, _) = device.invoke(&batch).unwrap();
    device.reset_ledger();

    let threads = 8;
    let per_thread = 5;
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let device = Arc::clone(&device);
            let batch = batch.clone();
            std::thread::spawn(move || {
                for _ in 0..per_thread {
                    let (out, stats) = device.invoke(&batch).unwrap();
                    assert_eq!(out, batch_expected(&batch, &out));
                    assert!(stats.total_s > 0.0);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker thread panicked");
    }

    // 8 threads x 5 invocations all recorded, serialized on the lock.
    let ledger = device.ledger();
    assert_eq!(ledger.invocations, (threads * per_thread) as u64);
    assert_eq!(ledger.samples, (threads * per_thread * batch.rows()) as u64);

    // And the arithmetic never changed under contention.
    let (after, _) = device.invoke(&batch).unwrap();
    assert_eq!(after, expected);
}

// Identity helper: the device is deterministic, so any output equals
// itself; this indirection keeps the closure simple while still forcing
// the comparison to happen inside the worker.
fn batch_expected(_batch: &Matrix, out: &Matrix) -> Matrix {
    out.clone()
}

#[test]
fn concurrent_load_and_invoke_never_corrupt_state() {
    // One thread repeatedly reloads the model while others invoke; every
    // invocation either succeeds with the correct width or fails with a
    // clean width/NoModel error — never a panic or a garbled result.
    let (device, batch) = loaded_device();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

    let loader = {
        let device = Arc::clone(&device);
        let batch = batch.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut rng = DetRng::new(72);
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let model = ModelBuilder::new(24)
                    .fully_connected(Matrix::random_normal(24, 64, &mut rng))
                    .unwrap()
                    .build()
                    .unwrap();
                let compiled = compile::compile(&model, &batch, &TargetSpec::default()).unwrap();
                device.load_model(compiled).unwrap();
            }
        })
    };

    let workers: Vec<_> = (0..4)
        .map(|_| {
            let device = Arc::clone(&device);
            let batch = batch.clone();
            std::thread::spawn(move || {
                for _ in 0..50 {
                    match device.invoke(&batch) {
                        Ok((out, _)) => {
                            assert_eq!(out.rows(), batch.rows());
                            assert!(out.cols() == 4 || out.cols() == 64);
                        }
                        Err(e) => panic!("unexpected invoke error: {e}"),
                    }
                }
            })
        })
        .collect();

    for w in workers {
        w.join().expect("worker panicked");
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    loader.join().expect("loader panicked");
}
