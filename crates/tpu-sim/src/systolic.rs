use hd_quant::{narrow, QuantParams, QuantizedMatrix};

use crate::Result;

/// A weight-stationary systolic array of int8 multiply-accumulate
/// processing elements.
///
/// The array holds one `rows x cols` weight tile at a time; input rows are
/// pumped through it ("efficiently reuses all the inputs by pumping them
/// through each processing element" — the paper's description of the MXU,
/// after Kung). Larger layers are decomposed into
/// `ceil(k / rows) * ceil(n / cols)` tiles; each tile pass streams the full
/// batch plus a pipeline fill/drain of `rows + cols` cycles.
///
/// Execution here is *functionally exact*: the tiled int8/i32 arithmetic
/// reproduces [`hd_quant::gemm::matmul_requantized`] bit-for-bit because
/// i32 accumulation is associative.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystolicArray {
    rows: usize,
    cols: usize,
}

impl SystolicArray {
    /// Creates an array of `rows x cols` processing elements.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be positive");
        SystolicArray { rows, cols }
    }

    /// Array height (reduction dimension per tile).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Array width (output dimension per tile).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Tiles needed along the reduction dimension for a `k`-deep layer.
    pub fn tiles_k(&self, k: usize) -> usize {
        k.div_ceil(self.rows)
    }

    /// Tiles needed along the output dimension for an `n`-wide layer.
    pub fn tiles_n(&self, n: usize) -> usize {
        n.div_ceil(self.cols)
    }

    /// Cycles to stream a `batch`-row input through a `k x n` layer with
    /// weights already resident: every tile pass costs the batch length
    /// plus pipeline fill and drain.
    pub fn stream_cycles(&self, batch: usize, k: usize, n: usize) -> u64 {
        let tiles = (self.tiles_k(k) * self.tiles_n(n)) as u64;
        tiles * (batch as u64 + self.rows as u64 + self.cols as u64)
    }

    /// Cycles to shift a `k x n` layer's weights into the array (one tile
    /// row per cycle), charged at model-load time.
    pub fn weight_load_cycles(&self, k: usize, n: usize) -> u64 {
        let tiles = (self.tiles_k(k) * self.tiles_n(n)) as u64;
        tiles * self.rows as u64
    }

    /// Cycles for the activation unit to process `elements` values,
    /// `cols` lanes wide.
    pub fn activation_cycles(&self, elements: usize) -> u64 {
        (elements as u64).div_ceil(self.cols as u64)
    }

    /// Executes one fully-connected layer through the tiled datapath,
    /// returning the requantized output and the cycles consumed.
    ///
    /// # Errors
    ///
    /// Returns a shape error (wrapped) if `input.cols() != weights.rows()`.
    pub fn execute_fc(
        &self,
        input: &QuantizedMatrix,
        weights: &QuantizedMatrix,
        out_params: QuantParams,
    ) -> Result<(QuantizedMatrix, u64)> {
        if input.cols() != weights.rows() {
            // Same error the reference kernel raises, so the two datapaths
            // stay interchangeable for callers inspecting the failure.
            let shape_err = hd_tensor::TensorError::ShapeMismatch {
                op: "quantized matmul",
                lhs: input.shape(),
                rhs: weights.shape(),
            };
            return Err(wide_nn::NnError::from(hd_quant::QuantError::from(shape_err)).into());
        }
        let (m, k) = input.shape();
        let n = weights.cols();
        let za = input.params().zero_point();
        let zb = weights.params().zero_point();
        let acc_scale = input.params().scale() * weights.params().scale();

        let mut acc = vec![0i64; m * n];
        // March the weight tiles exactly as the hardware would: for each
        // resident tile, pump every input row through it and accumulate the
        // partial products for the tile's output columns.
        for tk in 0..self.tiles_k(k) {
            let k_start = tk * self.rows;
            let k_end = (k_start + self.rows).min(k);
            for tn in 0..self.tiles_n(n) {
                let n_start = tn * self.cols;
                let n_end = (n_start + self.cols).min(n);
                for row in 0..m {
                    let in_row = input.row(row);
                    let tile_inputs = in_row.iter().enumerate().take(k_end).skip(k_start);
                    for (p, &iq) in tile_inputs {
                        let av = i32::from(iq) - za;
                        if av == 0 {
                            continue;
                        }
                        let w_row = weights.row(p);
                        let acc_row = &mut acc[row * n + n_start..row * n + n_end];
                        for (a, &wq) in acc_row.iter_mut().zip(&w_row[n_start..n_end]) {
                            *a += i64::from(av * (i32::from(wq) - zb));
                        }
                    }
                }
            }
        }

        // Saturate rather than truncate when folding the wide tile
        // accumulator back into the i32 requantization input; the static
        // range verifier rejects models that could reach this clamp, so
        // for compiled models the conversion is exact.
        let data: Vec<i8> = acc
            .iter()
            .map(|&v| out_params.requantize_accumulator(narrow::saturate_i64_to_i32(v), acc_scale))
            .collect();
        let cycles = self.stream_cycles(m, k, n);
        Ok((QuantizedMatrix::from_raw(m, n, data, out_params), cycles))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_tensor::rng::DetRng;
    use hd_tensor::Matrix;

    fn random_quantized(rows: usize, cols: usize, seed: u64) -> QuantizedMatrix {
        let mut rng = DetRng::new(seed);
        let m = Matrix::random_uniform(rows, cols, -1.0, 1.0, &mut rng);
        QuantizedMatrix::quantize(&m, QuantParams::from_min_max(-1.0, 1.0).unwrap())
    }

    #[test]
    fn tile_counts() {
        let a = SystolicArray::new(64, 64);
        assert_eq!(a.tiles_k(1), 1);
        assert_eq!(a.tiles_k(64), 1);
        assert_eq!(a.tiles_k(65), 2);
        assert_eq!(a.tiles_n(640), 10);
    }

    #[test]
    fn stream_cycles_formula() {
        let a = SystolicArray::new(64, 64);
        // 128x128 layer = 2x2 tiles; batch 100: 4 * (100 + 128) cycles.
        assert_eq!(a.stream_cycles(100, 128, 128), 4 * 228);
    }

    #[test]
    fn weight_load_cycles_formula() {
        let a = SystolicArray::new(64, 32);
        // 128x64 layer = 2x2 tiles; 4 tiles * 64 rows.
        assert_eq!(a.weight_load_cycles(128, 64), 4 * 64);
    }

    #[test]
    fn activation_cycles_round_up() {
        let a = SystolicArray::new(64, 64);
        assert_eq!(a.activation_cycles(0), 0);
        assert_eq!(a.activation_cycles(1), 1);
        assert_eq!(a.activation_cycles(64), 1);
        assert_eq!(a.activation_cycles(65), 2);
    }

    #[test]
    fn tiled_execution_matches_reference_kernel_bit_exact() {
        let array = SystolicArray::new(16, 16); // force multi-tile
        let input = random_quantized(5, 50, 1);
        let weights = random_quantized(50, 37, 2);
        let out_params = QuantParams::from_min_max(-8.0, 8.0).unwrap();

        let (tiled, cycles) = array.execute_fc(&input, &weights, out_params).unwrap();
        let reference = hd_quant::gemm::matmul_requantized(&input, &weights, out_params).unwrap();
        assert_eq!(tiled, reference, "tiled datapath diverged from reference");
        assert_eq!(cycles, array.stream_cycles(5, 50, 37));
    }

    #[test]
    fn single_tile_execution_matches_reference() {
        let array = SystolicArray::new(64, 64);
        let input = random_quantized(3, 10, 3);
        let weights = random_quantized(10, 8, 4);
        let out_params = QuantParams::from_min_max(-4.0, 4.0).unwrap();
        let (tiled, _) = array.execute_fc(&input, &weights, out_params).unwrap();
        let reference = hd_quant::gemm::matmul_requantized(&input, &weights, out_params).unwrap();
        assert_eq!(tiled, reference);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let array = SystolicArray::new(8, 8);
        let input = random_quantized(2, 5, 5);
        let weights = random_quantized(6, 4, 6);
        let out_params = QuantParams::from_min_max(-1.0, 1.0).unwrap();
        assert!(array.execute_fc(&input, &weights, out_params).is_err());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dims_rejected() {
        let _ = SystolicArray::new(0, 8);
    }

    #[test]
    fn more_tiles_means_more_cycles() {
        let small = SystolicArray::new(8, 8);
        let big = SystolicArray::new(64, 64);
        assert!(small.stream_cycles(10, 128, 128) > big.stream_cycles(10, 128, 128));
    }
}
