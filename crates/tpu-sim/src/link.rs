use crate::config::HostLinkConfig;

/// The host-to-accelerator channel: a finite-bandwidth pipe with a fixed
/// per-invocation dispatch latency.
///
/// # Examples
///
/// ```
/// use tpu_sim::{HostLink, HostLinkConfig};
///
/// let link = HostLink::new(HostLinkConfig {
///     bandwidth_bytes_per_sec: 100.0e6,
///     per_invoke_latency_s: 1.0e-3,
/// });
/// assert_eq!(link.transfer_time_s(100_000_000), 1.0);
/// assert_eq!(link.invoke_latency_s(), 1.0e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostLink {
    config: HostLinkConfig,
}

impl HostLink {
    /// Creates a link with the given parameters, rejecting invalid ones
    /// with a typed error.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SimError::InvalidConfig`] if the bandwidth is not
    /// positive or the latency is negative (see
    /// [`HostLinkConfig::validate`]).
    pub fn try_new(config: HostLinkConfig) -> crate::Result<Self> {
        config.validate()?;
        Ok(HostLink { config })
    }

    /// Creates a link with the given parameters.
    ///
    /// Thin panicking wrapper over [`HostLink::try_new`].
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is not positive or the latency is negative.
    #[must_use]
    pub fn new(config: HostLinkConfig) -> Self {
        match Self::try_new(config) {
            Ok(link) => link,
            Err(e) => panic!("{e}"),
        }
    }

    /// Seconds to move `bytes` across the link (payload only).
    pub fn transfer_time_s(&self, bytes: usize) -> f64 {
        bytes as f64 / self.config.bandwidth_bytes_per_sec
    }

    /// The fixed dispatch latency charged once per invocation.
    pub fn invoke_latency_s(&self) -> f64 {
        self.config.per_invoke_latency_s
    }

    /// The underlying configuration.
    pub fn config(&self) -> HostLinkConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_scales_linearly() {
        let link = HostLink::new(HostLinkConfig {
            bandwidth_bytes_per_sec: 1e6,
            per_invoke_latency_s: 0.0,
        });
        assert_eq!(link.transfer_time_s(0), 0.0);
        assert_eq!(link.transfer_time_s(500_000), 0.5);
        assert_eq!(link.transfer_time_s(2_000_000), 2.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = HostLink::new(HostLinkConfig {
            bandwidth_bytes_per_sec: 0.0,
            per_invoke_latency_s: 0.0,
        });
    }

    #[test]
    #[should_panic(expected = "latency cannot be negative")]
    fn negative_latency_rejected() {
        let _ = HostLink::new(HostLinkConfig {
            bandwidth_bytes_per_sec: 1.0,
            per_invoke_latency_s: -1.0,
        });
    }

    #[test]
    fn try_new_returns_typed_error() {
        let err = HostLink::try_new(HostLinkConfig {
            bandwidth_bytes_per_sec: -3.0,
            per_invoke_latency_s: 0.0,
        })
        .unwrap_err();
        assert!(matches!(err, crate::SimError::InvalidConfig(_)));
        assert!(err.to_string().contains("bandwidth must be positive"));
        assert!(HostLink::try_new(HostLinkConfig::default()).is_ok());
    }

    #[test]
    fn default_roundtrips_config() {
        let cfg = HostLinkConfig::default();
        assert_eq!(HostLink::new(cfg).config(), cfg);
    }
}
