use serde::{Deserialize, Serialize};

use wide_nn::TargetSpec;

use crate::fault::FaultConfig;
use crate::SimError;

/// Host-link (USB-like) channel parameters.
///
/// The defaults model an Edge TPU on USB 3.0 as the paper's setup does:
/// 320 MB/s of effective payload bandwidth and a 0.5 ms per-invocation
/// dispatch latency (interpreter + driver + transaction setup).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostLinkConfig {
    /// Effective payload bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// Fixed latency charged once per invocation, in seconds.
    pub per_invoke_latency_s: f64,
}

impl Default for HostLinkConfig {
    fn default() -> Self {
        HostLinkConfig {
            bandwidth_bytes_per_sec: 320.0e6,
            per_invoke_latency_s: 0.5e-3,
        }
    }
}

impl HostLinkConfig {
    /// Creates a link configuration with explicit parameters, rejecting
    /// invalid ones (the typed-error counterpart of
    /// [`HostLinkConfig::new`], matching `TargetSpec::try_new`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the bandwidth is not
    /// positive-finite or the latency is negative or non-finite.
    pub fn try_new(
        bandwidth_bytes_per_sec: f64,
        per_invoke_latency_s: f64,
    ) -> Result<Self, SimError> {
        let config = HostLinkConfig {
            bandwidth_bytes_per_sec,
            per_invoke_latency_s,
        };
        config.validate()?;
        Ok(config)
    }

    /// Creates a link configuration with explicit parameters.
    ///
    /// Thin wrapper over [`HostLinkConfig::try_new`].
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is not positive or the latency is
    /// negative.
    #[must_use]
    pub fn new(bandwidth_bytes_per_sec: f64, per_invoke_latency_s: f64) -> Self {
        match Self::try_new(bandwidth_bytes_per_sec, per_invoke_latency_s) {
            Ok(config) => config,
            Err(e) => panic!("{e}"),
        }
    }

    /// Validates the channel parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), SimError> {
        if !(self.bandwidth_bytes_per_sec > 0.0 && self.bandwidth_bytes_per_sec.is_finite()) {
            return Err(SimError::InvalidConfig(format!(
                "link bandwidth must be positive (got {})",
                self.bandwidth_bytes_per_sec
            )));
        }
        if !(self.per_invoke_latency_s >= 0.0 && self.per_invoke_latency_s.is_finite()) {
            return Err(SimError::InvalidConfig(format!(
                "invoke latency cannot be negative (got {})",
                self.per_invoke_latency_s
            )));
        }
        Ok(())
    }
}

/// Full device description: compute target plus clock and link.
///
/// The default is the Edge-TPU-like profile used throughout the paper
/// reproduction: a 64x64 systolic MXU at 480 MHz (about 3.9 int8 TOPS,
/// matching the Edge TPU's advertised 4 TOPS), an 8 MiB on-chip parameter
/// buffer, and a USB 3.0 host link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Compute-target geometry (array shape, parameter buffer).
    pub target: TargetSpec,
    /// Core clock in hertz.
    pub clock_hz: f64,
    /// Host link parameters.
    pub link: HostLinkConfig,
    /// Average active power draw of the accelerator while computing,
    /// watts (the USB Edge TPU is a ~2 W device).
    pub active_power_w: f64,
    /// Seeded fault-injection schedule (default: fully disabled).
    #[serde(default)]
    pub fault: FaultConfig,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            target: TargetSpec::default(),
            clock_hz: 480.0e6,
            link: HostLinkConfig::default(),
            active_power_w: 2.0,
            fault: FaultConfig::default(),
        }
    }
}

impl DeviceConfig {
    /// Peak int8 multiply-accumulate throughput in operations per second
    /// (2 ops per MAC), for sanity checks and documentation.
    pub fn peak_ops_per_sec(&self) -> f64 {
        2.0 * self.clock_hz * (self.target.array_rows * self.target.array_cols) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_edge_tpu_headline_throughput() {
        let cfg = DeviceConfig::default();
        let tops = cfg.peak_ops_per_sec() / 1e12;
        assert!(
            (3.5..4.5).contains(&tops),
            "peak {tops} TOPS not Edge-TPU-like"
        );
    }

    #[test]
    fn default_power_is_edge_tpu_like() {
        let cfg = DeviceConfig::default();
        assert!((1.0..4.0).contains(&cfg.active_power_w));
    }

    #[test]
    fn default_link_is_usb3_like() {
        let link = HostLinkConfig::default();
        assert!(link.bandwidth_bytes_per_sec > 100e6);
        assert!(link.per_invoke_latency_s < 5e-3);
    }
}
