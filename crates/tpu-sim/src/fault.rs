//! Deterministic fault injection for the simulated device.
//!
//! Edge deployments of USB-attached accelerators meet transient dispatch
//! failures, link-payload corruption, SRAM weight upsets, and outright
//! device hangs as an operating reality. This module injects exactly
//! those fault classes into [`crate::Device`], driven by a seeded
//! [`DetRng`] so every fault schedule is reproducible bit-for-bit.
//!
//! The injected faults model *detected* failures: the host driver sees a
//! typed [`crate::SimError`] (CRC mismatch on a transfer, parity failure
//! on resident weights, a watchdog deadline firing) rather than silently
//! corrupted data. A retried invocation therefore converges to the exact
//! fault-free output — which is what the resilience layer above relies
//! on. *Silent* weight corruption for accuracy-degradation studies stays
//! on the explicit [`crate::Device::inject_weight_faults`] hook.
//!
//! Every injected fault is appended to a [`FaultTrace`] so tests can
//! assert the schedule (and its determinism) exactly.

use hd_tensor::rng::DetRng;
use serde::{Deserialize, Serialize};

/// Which direction a corrupted host-link transfer was moving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkDirection {
    /// Input payload, host to device.
    HostToDevice,
    /// Output payload, device to host.
    DeviceToHost,
}

impl std::fmt::Display for LinkDirection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkDirection::HostToDevice => write!(f, "host-to-device"),
            LinkDirection::DeviceToHost => write!(f, "device-to-host"),
        }
    }
}

/// Seeded fault-injection schedule for one device.
///
/// All rates are per-invocation probabilities in `[0, 1]`; the default is
/// fully disabled (all rates zero), which makes fault handling free for
/// every existing caller. The schedule is driven by a [`DetRng`] seeded
/// from `seed`, so two devices built from equal configs inject byte-wise
/// identical fault sequences for identical invocation sequences.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed of the fault schedule's RNG stream.
    pub seed: u64,
    /// Probability an invocation fails at dispatch (driver/USB hiccup)
    /// before any payload moves.
    pub transient_invoke_rate: f64,
    /// Probability a host-link payload transfer is corrupted (detected by
    /// the link CRC); drawn independently for each direction.
    pub link_corruption_rate: f64,
    /// Probability the resident weights take an SRAM bit upset (detected
    /// by parity when the weights stream into the array). The device then
    /// rejects every invocation until a pristine model is reloaded.
    pub weight_upset_rate: f64,
    /// Probability the device hangs during an invocation.
    pub hang_rate: f64,
    /// Simulated stall a hang adds to the invocation, seconds.
    pub hang_stall_s: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0xFA017,
            transient_invoke_rate: 0.0,
            link_corruption_rate: 0.0,
            weight_upset_rate: 0.0,
            hang_rate: 0.0,
            hang_stall_s: 0.05,
        }
    }
}

impl FaultConfig {
    /// Whether any fault class can fire.
    pub fn enabled(&self) -> bool {
        self.transient_invoke_rate > 0.0
            || self.link_corruption_rate > 0.0
            || self.weight_upset_rate > 0.0
            || self.hang_rate > 0.0
    }

    /// Validates rates and stall time.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SimError::InvalidConfig`] naming the offending
    /// field.
    pub fn validate(&self) -> crate::Result<()> {
        let rates = [
            ("transient_invoke_rate", self.transient_invoke_rate),
            ("link_corruption_rate", self.link_corruption_rate),
            ("weight_upset_rate", self.weight_upset_rate),
            ("hang_rate", self.hang_rate),
        ];
        for (name, rate) in rates {
            if !(0.0..=1.0).contains(&rate) {
                return Err(crate::SimError::InvalidConfig(format!(
                    "fault {name} {rate} outside [0, 1]"
                )));
            }
        }
        if !self.hang_stall_s.is_finite() || self.hang_stall_s < 0.0 {
            return Err(crate::SimError::InvalidConfig(format!(
                "fault hang_stall_s {} must be finite and non-negative",
                self.hang_stall_s
            )));
        }
        Ok(())
    }

    /// Sets the schedule seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the transient dispatch-failure rate.
    #[must_use]
    pub fn with_transient_rate(mut self, rate: f64) -> Self {
        self.transient_invoke_rate = rate;
        self
    }

    /// Sets the per-direction link corruption rate.
    #[must_use]
    pub fn with_link_corruption_rate(mut self, rate: f64) -> Self {
        self.link_corruption_rate = rate;
        self
    }

    /// Sets the resident-weight SRAM upset rate.
    #[must_use]
    pub fn with_weight_upset_rate(mut self, rate: f64) -> Self {
        self.weight_upset_rate = rate;
        self
    }

    /// Sets the hang rate and the stall each hang adds.
    #[must_use]
    pub fn with_hang(mut self, rate: f64, stall_s: f64) -> Self {
        self.hang_rate = rate;
        self.hang_stall_s = stall_s;
        self
    }
}

/// One fault class, as recorded in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The invocation failed at dispatch.
    TransientInvokeFailure,
    /// The resident weights took a parity-detected SRAM upset.
    WeightUpset,
    /// A link payload failed its CRC.
    LinkCorruption {
        /// Transfer direction.
        direction: LinkDirection,
        /// Payload bytes in flight.
        bytes: usize,
    },
    /// The device stalled mid-invocation.
    Hang {
        /// Injected stall, seconds.
        stall_s: f64,
        /// Whether the stall pushed the invocation past its deadline
        /// (fatal) or merely slowed it down.
        fatal: bool,
    },
}

/// One injected fault: which invocation attempt it hit, what fired, and
/// how much simulated time the failed (or slowed) attempt consumed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// Zero-based index of the invocation attempt the fault hit.
    pub invocation: u64,
    /// What fired.
    pub kind: FaultKind,
    /// Simulated seconds charged to the affected attempt.
    pub charged_s: f64,
}

/// The ordered record of every injected fault since device construction.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultTrace {
    records: Vec<FaultRecord>,
}

impl FaultTrace {
    /// The records, in injection order.
    pub fn records(&self) -> &[FaultRecord] {
        &self.records
    }

    /// Number of injected faults.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no fault has been injected.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of records matching a predicate over the fault kind.
    pub fn count_kind(&self, pred: impl Fn(&FaultKind) -> bool) -> usize {
        self.records.iter().filter(|r| pred(&r.kind)).count()
    }

    pub(crate) fn push(&mut self, record: FaultRecord) {
        self.records.push(record);
    }
}

/// Which fault classes fire on one invocation attempt.
///
/// All five draws happen on every armed attempt — even when an earlier
/// fault aborts the invocation — so the RNG stream position depends only
/// on the attempt count, never on which faults happened to fire. That
/// keeps traces reproducible across retry policies.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct AttemptFaults {
    pub transient: bool,
    pub corrupt_input: bool,
    pub weight_upset: bool,
    pub hang: bool,
    pub corrupt_output: bool,
}

/// Runtime fault-injection state of one device: the armed config, its RNG
/// stream, the attempt counter, and the trace.
#[derive(Debug)]
pub(crate) struct FaultPlan {
    config: FaultConfig,
    rng: DetRng,
    attempts: u64,
    trace: FaultTrace,
}

impl FaultPlan {
    #[must_use]
    pub(crate) fn new(config: FaultConfig) -> Self {
        FaultPlan {
            rng: DetRng::new(config.seed),
            config,
            attempts: 0,
            trace: FaultTrace::default(),
        }
    }

    pub(crate) fn config(&self) -> &FaultConfig {
        &self.config
    }

    pub(crate) fn trace(&self) -> &FaultTrace {
        &self.trace
    }

    /// Starts an invocation attempt: bumps the counter and draws the
    /// fault schedule for it. Returns the attempt index and its faults.
    pub(crate) fn begin_attempt(&mut self) -> (u64, AttemptFaults) {
        let index = self.attempts;
        self.attempts += 1;
        if !self.config.enabled() {
            return (index, AttemptFaults::default());
        }
        let faults = AttemptFaults {
            transient: self.rng.next_f64() < self.config.transient_invoke_rate,
            corrupt_input: self.rng.next_f64() < self.config.link_corruption_rate,
            weight_upset: self.rng.next_f64() < self.config.weight_upset_rate,
            hang: self.rng.next_f64() < self.config.hang_rate,
            corrupt_output: self.rng.next_f64() < self.config.link_corruption_rate,
        };
        (index, faults)
    }

    pub(crate) fn record(&mut self, invocation: u64, kind: FaultKind, charged_s: f64) {
        self.trace.push(FaultRecord {
            invocation,
            kind,
            charged_s,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled_and_valid() {
        let c = FaultConfig::default();
        assert!(!c.enabled());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builders_enable_and_validate() {
        let c = FaultConfig::default()
            .with_seed(7)
            .with_transient_rate(0.1)
            .with_link_corruption_rate(0.05)
            .with_weight_upset_rate(0.01)
            .with_hang(0.02, 0.5);
        assert!(c.enabled());
        assert!(c.validate().is_ok());
        assert_eq!(c.seed, 7);
    }

    #[test]
    fn out_of_range_rates_rejected() {
        let bad = FaultConfig::default().with_transient_rate(1.5);
        assert!(bad.validate().is_err());
        let bad = FaultConfig::default().with_link_corruption_rate(-0.1);
        assert!(bad.validate().is_err());
        let bad = FaultConfig::default().with_hang(0.1, f64::NAN);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn same_seed_draws_identical_schedules() {
        let config = FaultConfig::default()
            .with_seed(99)
            .with_transient_rate(0.3)
            .with_link_corruption_rate(0.2)
            .with_hang(0.1, 0.01);
        let mut a = FaultPlan::new(config);
        let mut b = FaultPlan::new(config);
        for _ in 0..64 {
            let (ia, fa) = a.begin_attempt();
            let (ib, fb) = b.begin_attempt();
            assert_eq!(ia, ib);
            assert_eq!(fa.transient, fb.transient);
            assert_eq!(fa.corrupt_input, fb.corrupt_input);
            assert_eq!(fa.weight_upset, fb.weight_upset);
            assert_eq!(fa.hang, fb.hang);
            assert_eq!(fa.corrupt_output, fb.corrupt_output);
        }
    }

    #[test]
    fn disabled_plan_never_fires_and_draws_nothing() {
        let mut plan = FaultPlan::new(FaultConfig::default());
        for i in 0..16 {
            let (index, faults) = plan.begin_attempt();
            assert_eq!(index, i);
            assert!(
                !(faults.transient
                    || faults.corrupt_input
                    || faults.weight_upset
                    || faults.hang
                    || faults.corrupt_output)
            );
        }
        assert!(plan.trace().is_empty());
    }

    #[test]
    fn trace_records_in_order() {
        let mut plan = FaultPlan::new(FaultConfig::default());
        plan.record(0, FaultKind::TransientInvokeFailure, 1e-3);
        plan.record(
            2,
            FaultKind::LinkCorruption {
                direction: LinkDirection::HostToDevice,
                bytes: 64,
            },
            2e-3,
        );
        let trace = plan.trace().clone();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.records()[0].invocation, 0);
        assert_eq!(trace.records()[1].invocation, 2);
        assert_eq!(
            trace.count_kind(|k| matches!(k, FaultKind::LinkCorruption { .. })),
            1
        );
    }
}
