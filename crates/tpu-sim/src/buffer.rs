use crate::error::SimError;
use crate::Result;

/// The on-chip parameter store of the accelerator.
///
/// On the Edge TPU this is an 8 MiB SRAM that must hold the whole model's
/// weights; a model that does not fit is rejected at load time (the real
/// compiler would fall back to streaming weights over USB, which the paper
/// avoids by sizing models to fit — our `d = 10000`, `n = 784` encoder is
/// 7.84 MB, just under the limit, which is not a coincidence).
///
/// # Examples
///
/// ```
/// use tpu_sim::UnifiedBuffer;
///
/// # fn main() -> Result<(), tpu_sim::SimError> {
/// let mut buf = UnifiedBuffer::new(1024);
/// buf.allocate(1000)?;
/// assert_eq!(buf.free_bytes(), 24);
/// buf.reset();
/// assert_eq!(buf.free_bytes(), 1024);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnifiedBuffer {
    capacity: usize,
    used: usize,
}

impl UnifiedBuffer {
    /// Creates a buffer with the given capacity in bytes.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        UnifiedBuffer { capacity, used: 0 }
    }

    /// Reserves `bytes`, failing if the buffer would overflow.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BufferOverflow`] when `bytes` exceeds the free
    /// space; the buffer is left unchanged in that case.
    pub fn allocate(&mut self, bytes: usize) -> Result<()> {
        if bytes > self.free_bytes() {
            return Err(SimError::BufferOverflow {
                required: bytes,
                available: self.free_bytes(),
            });
        }
        self.used += bytes;
        Ok(())
    }

    /// Releases all reservations (model unload).
    pub fn reset(&mut self) {
        self.used = 0;
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently reserved.
    pub fn used_bytes(&self) -> usize {
        self.used
    }

    /// Bytes still available.
    pub fn free_bytes(&self) -> usize {
        self.capacity - self.used
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_within_capacity() {
        let mut buf = UnifiedBuffer::new(100);
        buf.allocate(60).unwrap();
        buf.allocate(40).unwrap();
        assert_eq!(buf.free_bytes(), 0);
        assert_eq!(buf.used_bytes(), 100);
    }

    #[test]
    fn overflow_is_rejected_and_state_unchanged() {
        let mut buf = UnifiedBuffer::new(100);
        buf.allocate(60).unwrap();
        let err = buf.allocate(50).unwrap_err();
        assert_eq!(
            err,
            SimError::BufferOverflow {
                required: 50,
                available: 40
            }
        );
        assert_eq!(buf.used_bytes(), 60);
    }

    #[test]
    fn reset_frees_everything() {
        let mut buf = UnifiedBuffer::new(10);
        buf.allocate(10).unwrap();
        buf.reset();
        assert_eq!(buf.free_bytes(), 10);
        buf.allocate(10).unwrap();
    }

    #[test]
    fn zero_allocation_always_succeeds() {
        let mut buf = UnifiedBuffer::new(0);
        buf.allocate(0).unwrap();
        assert!(buf.allocate(1).is_err());
    }
}
