use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use hd_tensor::Matrix;
use wide_nn::{CompiledModel, QuantStage};

use crate::buffer::UnifiedBuffer;
use crate::config::DeviceConfig;
use crate::error::SimError;
use crate::fault::{FaultKind, FaultPlan, FaultTrace, LinkDirection};
use crate::link::HostLink;
use crate::systolic::SystolicArray;
use crate::timing::ModelDims;
use crate::Result;

/// Timing breakdown of one [`Device::invoke`] call, all in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InvokeStats {
    /// Number of samples processed.
    pub samples: usize,
    /// MXU + activation-unit cycles consumed.
    pub compute_cycles: u64,
    /// Compute time at the device clock.
    pub compute_s: f64,
    /// Host-to-device input payload time.
    pub input_transfer_s: f64,
    /// Device-to-host output payload time.
    pub output_transfer_s: f64,
    /// Fixed per-invocation dispatch latency.
    pub overhead_s: f64,
    /// Sum of all components.
    pub total_s: f64,
}

/// One-time cost report from [`Device::load_model`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadReport {
    /// Parameter bytes moved onto the device.
    pub param_bytes: usize,
    /// Link time for the parameter transfer.
    pub transfer_s: f64,
    /// Cycles spent shifting weights into the array.
    pub weight_load_cycles: u64,
    /// Total load time.
    pub total_s: f64,
}

/// Accumulated device activity since construction or the last reset.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TimingLedger {
    /// Number of invocations served.
    pub invocations: u64,
    /// Total samples processed.
    pub samples: u64,
    /// Total compute seconds.
    pub compute_s: f64,
    /// Total transfer seconds (both directions).
    pub transfer_s: f64,
    /// Total dispatch-overhead seconds.
    pub overhead_s: f64,
    /// Total model-load seconds.
    pub load_s: f64,
    /// Invocation attempts that failed with an injected fault (or a
    /// watchdog-deadline overrun).
    #[serde(default)]
    pub faulted_invocations: u64,
    /// Seconds consumed by failed attempts plus injected hang stalls.
    /// Failed-attempt seconds are counted here and in `total_s`, never in
    /// the per-phase success buckets.
    #[serde(default)]
    pub fault_s: f64,
    /// Transfer seconds hidden behind compute by a double-buffered
    /// (pipelined) invocation. Serial invocations contribute zero.
    #[serde(default)]
    pub overlapped_s: f64,
    /// Transfer seconds left on the critical path: `transfer_s` minus
    /// `overlapped_s`. For pipelined invocations `total_s` decomposes as
    /// `overhead_s + compute_s + exposed_transfer_s` (plus fault stalls);
    /// serial invocations expose their full transfer time.
    #[serde(default)]
    pub exposed_transfer_s: f64,
    /// Grand total (loads + invocations + failed attempts).
    pub total_s: f64,
}

impl TimingLedger {
    fn record_invoke(&mut self, stats: &InvokeStats, overlapped_s: f64) {
        self.invocations += 1;
        self.samples += stats.samples as u64;
        self.compute_s += stats.compute_s;
        let transfer_s = stats.input_transfer_s + stats.output_transfer_s;
        self.transfer_s += transfer_s;
        self.overhead_s += stats.overhead_s;
        self.overlapped_s += overlapped_s;
        self.exposed_transfer_s += transfer_s - overlapped_s;
        self.total_s += stats.total_s;
    }

    fn record_load(&mut self, report: &LoadReport) {
        self.load_s += report.total_s;
        self.total_s += report.total_s;
    }

    fn record_failed_attempt(&mut self, charged_s: f64) {
        self.faulted_invocations += 1;
        self.fault_s += charged_s;
        self.total_s += charged_s;
    }
}

struct DeviceState {
    model: Option<CompiledModel>,
    buffer: UnifiedBuffer,
    ledger: TimingLedger,
    faults: FaultPlan,
    weights_corrupt: bool,
}

/// A simulated edge accelerator.
///
/// The device holds at most one model at a time ("Most Edge TPU only take
/// one model at a time, and the weights have to be loaded to the on-chip
/// buffer every time" — paper, Section III-B); loading a new model evicts
/// the previous one and pays the full parameter-transfer cost again. This
/// is exactly the overhead that motivates the paper's merged single
/// inference model for bagging.
///
/// The device is `Send + Sync`; invocations serialize on an internal lock,
/// like a real single-queue accelerator.
pub struct Device {
    config: DeviceConfig,
    array: SystolicArray,
    link: HostLink,
    ordinal: usize,
    state: Mutex<DeviceState>,
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock();
        f.debug_struct("Device")
            .field("config", &self.config)
            .field("model_loaded", &state.model.is_some())
            .field("buffer_used", &state.buffer.used_bytes())
            .finish()
    }
}

impl Device {
    /// Creates a device with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the link or fault configuration is invalid (see
    /// [`crate::HostLinkConfig::validate`] and
    /// [`crate::FaultConfig::validate`]).
    #[must_use]
    pub fn new(config: DeviceConfig) -> Self {
        Self::with_ordinal(config, 0)
    }

    /// Creates a device bound to the given schedule-resource ordinal:
    /// stage graphs refer to this handle as
    /// [`Resource::Device(ordinal)`](hd_dataflow::Resource), so a
    /// multi-device schedule can pin each stage to a concrete simulated
    /// accelerator. [`Device::new`] binds ordinal 0, the classic
    /// single-device resource.
    ///
    /// # Panics
    ///
    /// Same as [`Device::new`].
    #[must_use]
    pub fn with_ordinal(config: DeviceConfig, ordinal: usize) -> Self {
        let array = SystolicArray::new(config.target.array_rows, config.target.array_cols);
        let link = HostLink::new(config.link);
        if let Err(e) = config.fault.validate() {
            panic!("{e}");
        }
        let buffer = UnifiedBuffer::new(config.target.param_buffer_bytes);
        let faults = FaultPlan::new(config.fault);
        Device {
            config,
            array,
            link,
            ordinal,
            state: Mutex::new(DeviceState {
                model: None,
                buffer,
                ledger: TimingLedger::default(),
                faults,
                weights_corrupt: false,
            }),
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// The SDF-schedule resource this device handle is bindable as:
    /// a stage tagged with this resource executes on this device.
    pub fn resource(&self) -> hd_dataflow::Resource {
        hd_dataflow::Resource::Device(self.ordinal)
    }

    /// Whether a model is currently resident.
    pub fn model_loaded(&self) -> bool {
        self.state.lock().model.is_some()
    }

    /// Loads a compiled model, evicting any previous one, and returns the
    /// one-time cost report.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BufferOverflow`] if the model's parameters do
    /// not fit the on-chip buffer. The previous model remains loaded in
    /// that case.
    pub fn load_model(&self, compiled: CompiledModel) -> Result<LoadReport> {
        let mut state = self.state.lock();
        let bytes = compiled.param_bytes();
        if bytes > state.buffer.capacity() {
            return Err(SimError::BufferOverflow {
                required: bytes,
                available: state.buffer.capacity(),
            });
        }

        let dims = ModelDims::from_compiled(&compiled);
        let transfer_s = self.link.transfer_time_s(bytes);
        let weight_load_cycles: u64 = dims
            .fc_layers
            .iter()
            .map(|&(k, n)| self.array.weight_load_cycles(k, n))
            .sum();
        let report = LoadReport {
            param_bytes: bytes,
            transfer_s,
            weight_load_cycles,
            total_s: transfer_s + weight_load_cycles as f64 / self.config.clock_hz,
        };

        state.buffer.reset();
        if state.buffer.allocate(bytes).is_err() {
            // Unreachable given the capacity check above, but propagate a
            // typed error rather than poison the device lock by panicking.
            return Err(SimError::BufferOverflow {
                required: bytes,
                available: state.buffer.capacity(),
            });
        }
        state.model = Some(compiled);
        state.weights_corrupt = false;
        state.ledger.record_load(&report);
        Ok(report)
    }

    /// Unloads the resident model, freeing the parameter buffer.
    pub fn unload_model(&self) {
        let mut state = self.state.lock();
        state.model = None;
        state.buffer.reset();
    }

    /// Runs the resident model on a batch of `f32` samples (one per row),
    /// returning the dequantized outputs and the timing breakdown of this
    /// single invocation.
    ///
    /// The numeric path is: quantize inputs with the model's calibrated
    /// input parameters, run every stage in int8 through the systolic
    /// array and activation LUTs, dequantize the outputs. This matches
    /// [`wide_nn::QuantizedModel::forward`] bit-for-bit.
    ///
    /// Host-side costs (the quantize/dequantize themselves) are *not*
    /// charged here — they belong to the host CPU model, exactly as in the
    /// paper's co-design accounting.
    ///
    /// # Errors
    ///
    /// * [`SimError::NoModelLoaded`] — no model resident.
    /// * [`SimError::BatchWidth`] — batch width mismatch.
    /// * Any fault error of [`Device::invoke_with_deadline`] when the
    ///   device's [`crate::FaultConfig`] is armed.
    pub fn invoke(&self, batch: &Matrix) -> Result<(Matrix, InvokeStats)> {
        self.invoke_with_deadline(batch, None)
    }

    /// Like [`Device::invoke`], but with an optional per-invocation
    /// watchdog deadline and the device's seeded fault schedule applied.
    ///
    /// When the device's [`crate::FaultConfig`] is armed, each attempt may
    /// fail with a typed, *detected* fault; the failed attempt's simulated
    /// seconds are charged to the ledger (`fault_s`) but never to the
    /// success buckets, and the fault is appended to the
    /// [`Device::fault_trace`]. A retried attempt that succeeds returns
    /// output bit-identical to the fault-free run.
    ///
    /// # Errors
    ///
    /// * [`SimError::NoModelLoaded`] / [`SimError::BatchWidth`] — caller
    ///   bugs; these never consume a fault-schedule attempt.
    /// * [`SimError::TransientInvokeFailure`] — dispatch failed before any
    ///   payload moved; only the dispatch overhead is charged.
    /// * [`SimError::LinkCorruption`] — a payload failed its CRC; the
    ///   wasted transfer time is charged.
    /// * [`SimError::WeightCorruption`] — the resident weights failed
    ///   parity (a new or earlier SRAM upset); every invocation fails
    ///   until a pristine model is reloaded via [`Device::load_model`].
    /// * [`SimError::DeviceHang`] — the invocation exceeded `deadline_s`
    ///   (an injected stall or a naturally slow invocation); exactly the
    ///   deadline is charged, as the watchdog kills the attempt there.
    pub fn invoke_with_deadline(
        &self,
        batch: &Matrix,
        deadline_s: Option<f64>,
    ) -> Result<(Matrix, InvokeStats)> {
        self.invoke_inner(batch, deadline_s, false)
    }

    /// Like [`Device::invoke`], but timed under the double-buffered DMA
    /// schedule: the input DMA of the next tile and the output DMA of the
    /// previous tile both run while the MXU computes, so the invocation's
    /// elapsed time is the critical-path max of the transfer and compute
    /// legs (plus the once-per-invocation dispatch overhead).
    ///
    /// Outputs are bit-identical to [`Device::invoke`] — only the clock
    /// model changes. The returned [`InvokeStats`] keeps the raw per-stage
    /// times; `total_s` is the pipelined elapsed time, so the stages no
    /// longer sum to it. The hidden transfer seconds land in the ledger's
    /// `overlapped_s` bucket.
    ///
    /// # Errors
    ///
    /// Same as [`Device::invoke`].
    pub fn invoke_overlapped(&self, batch: &Matrix) -> Result<(Matrix, InvokeStats)> {
        self.invoke_overlapped_with_deadline(batch, None)
    }

    /// [`Device::invoke_overlapped`] with an optional watchdog deadline;
    /// fault semantics match [`Device::invoke_with_deadline`] draw for
    /// draw — one fault-schedule attempt per call, identical charge rules
    /// (a fatal hang still charges exactly the deadline; a corrupted
    /// output charges the pipelined elapsed time).
    ///
    /// # Errors
    ///
    /// Same as [`Device::invoke_with_deadline`].
    pub fn invoke_overlapped_with_deadline(
        &self,
        batch: &Matrix,
        deadline_s: Option<f64>,
    ) -> Result<(Matrix, InvokeStats)> {
        self.invoke_inner(batch, deadline_s, true)
    }

    fn invoke_inner(
        &self,
        batch: &Matrix,
        deadline_s: Option<f64>,
        overlapped: bool,
    ) -> Result<(Matrix, InvokeStats)> {
        let mut state = self.state.lock();
        let state = &mut *state;
        let model = state.model.as_ref().ok_or(SimError::NoModelLoaded)?;
        let quantized = model.quantized();
        if batch.cols() != quantized.input_dim() {
            return Err(SimError::BatchWidth {
                expected: quantized.input_dim(),
                actual: batch.cols(),
            });
        }

        let samples = batch.rows();
        let (attempt, faults) = state.faults.begin_attempt();
        let overhead_s = self.link.invoke_latency_s();
        let input_bytes = samples * quantized.input_dim();
        let input_transfer_s = self.link.transfer_time_s(input_bytes);

        if faults.transient {
            state
                .faults
                .record(attempt, FaultKind::TransientInvokeFailure, overhead_s);
            state.ledger.record_failed_attempt(overhead_s);
            return Err(SimError::TransientInvokeFailure);
        }
        if faults.corrupt_input {
            let charged = overhead_s + input_transfer_s;
            state.faults.record(
                attempt,
                FaultKind::LinkCorruption {
                    direction: LinkDirection::HostToDevice,
                    bytes: input_bytes,
                },
                charged,
            );
            state.ledger.record_failed_attempt(charged);
            return Err(SimError::LinkCorruption {
                direction: LinkDirection::HostToDevice,
                bytes: input_bytes,
            });
        }
        if faults.weight_upset {
            // Parity trips as the weights stream into the array, after the
            // input payload already landed.
            state.weights_corrupt = true;
            state.faults.record(
                attempt,
                FaultKind::WeightUpset,
                overhead_s + input_transfer_s,
            );
        }
        if state.weights_corrupt {
            state
                .ledger
                .record_failed_attempt(overhead_s + input_transfer_s);
            return Err(SimError::WeightCorruption);
        }
        let mut cycles: u64 = 0;
        let mut current = quantized.quantize_input(batch)?;
        for stage in quantized.stages() {
            match stage {
                QuantStage::FullyConnected {
                    weights,
                    out_params,
                } => {
                    let (next, c) = self.array.execute_fc(&current, weights, *out_params)?;
                    cycles += c;
                    current = next;
                }
                QuantStage::FullyConnectedPerChannel {
                    weights,
                    out_params,
                } => {
                    // Per-channel requantization shares the MXU streaming
                    // cost; the per-column scale multiply happens in the
                    // output stage at no extra cycles.
                    let real = weights
                        .matmul_dequantized(&current)
                        .map_err(wide_nn::NnError::from)?;
                    cycles +=
                        self.array
                            .stream_cycles(current.rows(), weights.rows(), weights.cols());
                    current = hd_quant::QuantizedMatrix::quantize(&real, *out_params);
                }
                QuantStage::Lut(lut) => {
                    let mut data = current.as_slice().to_vec();
                    lut.apply_slice(&mut data);
                    cycles += self.array.activation_cycles(data.len());
                    current = hd_quant::QuantizedMatrix::from_raw(
                        current.rows(),
                        current.cols(),
                        data,
                        lut.output_params(),
                    );
                }
            }
        }
        let output = current.dequantize();

        let output_bytes = samples * quantized.output_dim();
        let output_transfer_s = self.link.transfer_time_s(output_bytes);
        let compute_s = cycles as f64 / self.config.clock_hz;
        let stall_s = if faults.hang {
            state.faults.config().hang_stall_s
        } else {
            0.0
        };
        let transfer_s = input_transfer_s + output_transfer_s;
        let staged_s = if overlapped {
            // Double-buffered DMA: transfers ride under compute, so only
            // the longer leg is on the critical path.
            transfer_s.max(compute_s)
        } else {
            transfer_s + compute_s
        };
        let elapsed_s = overhead_s + staged_s + stall_s;

        if let Some(deadline) = deadline_s {
            if elapsed_s > deadline {
                // The watchdog kills the attempt at the deadline, so that
                // is all the simulated time the attempt can consume.
                if faults.hang {
                    state.faults.record(
                        attempt,
                        FaultKind::Hang {
                            stall_s,
                            fatal: true,
                        },
                        deadline,
                    );
                }
                state.ledger.record_failed_attempt(deadline);
                return Err(SimError::DeviceHang {
                    elapsed_s,
                    deadline_s: deadline,
                });
            }
        }
        if faults.hang {
            // Survivable stall: the invocation completes, just late. The
            // stall rides in the overhead bucket so `total_s` stays the
            // sum of the parts.
            state.faults.record(
                attempt,
                FaultKind::Hang {
                    stall_s,
                    fatal: false,
                },
                stall_s,
            );
        }
        if faults.corrupt_output {
            let charged = elapsed_s;
            state.faults.record(
                attempt,
                FaultKind::LinkCorruption {
                    direction: LinkDirection::DeviceToHost,
                    bytes: output_bytes,
                },
                charged,
            );
            state.ledger.record_failed_attempt(charged);
            return Err(SimError::LinkCorruption {
                direction: LinkDirection::DeviceToHost,
                bytes: output_bytes,
            });
        }

        let stats = InvokeStats {
            samples,
            compute_cycles: cycles,
            compute_s,
            input_transfer_s,
            output_transfer_s,
            overhead_s: overhead_s + stall_s,
            total_s: elapsed_s,
        };
        let overlapped_s = if overlapped {
            transfer_s.min(compute_s)
        } else {
            0.0
        };
        state.ledger.record_invoke(&stats, overlapped_s);
        state.ledger.fault_s += stall_s;
        Ok((output, stats))
    }

    /// Runs a batch in chunks of at most `chunk` rows, as a host driver
    /// would, returning the stitched outputs and per-chunk stats.
    ///
    /// # Errors
    ///
    /// Same as [`Device::invoke`].
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    pub fn invoke_chunked(
        &self,
        batch: &Matrix,
        chunk: usize,
    ) -> Result<(Matrix, Vec<InvokeStats>)> {
        self.run_chunked(batch, chunk, false)
    }

    /// Runs a batch in chunks of at most `chunk` rows under the
    /// double-buffered DMA schedule: while the MXU computes chunk *i*, the
    /// link streams chunk *i+1* in and chunk *i-1* out. Each chunk's
    /// simulated elapsed time is therefore the critical-path max of its
    /// transfer and compute legs (dispatch overhead still paid once per
    /// chunk), and the outputs are bit-identical to
    /// [`Device::invoke_chunked`].
    ///
    /// # Errors
    ///
    /// Same as [`Device::invoke`].
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    pub fn invoke_pipelined(
        &self,
        batch: &Matrix,
        chunk: usize,
    ) -> Result<(Matrix, Vec<InvokeStats>)> {
        self.run_chunked(batch, chunk, true)
    }

    fn run_chunked(
        &self,
        batch: &Matrix,
        chunk: usize,
        overlapped: bool,
    ) -> Result<(Matrix, Vec<InvokeStats>)> {
        assert!(chunk > 0, "chunk must be positive");
        if batch.rows() == 0 {
            let empty = Matrix::vstack(&[]).map_err(wide_nn::NnError::from)?;
            return Ok((empty, Vec::new()));
        }
        // Stitch into one preallocated buffer instead of vstack-reallocating
        // the collected chunks; output width is known after the first chunk.
        let mut stitched: Option<Matrix> = None;
        let mut all_stats = Vec::with_capacity(batch.rows().div_ceil(chunk));
        let mut start = 0;
        while start < batch.rows() {
            let end = (start + chunk).min(batch.rows());
            let part = batch
                .slice_rows(start, end)
                .map_err(wide_nn::NnError::from)?;
            let (out, stats) = self.invoke_inner(&part, None, overlapped)?;
            let cols = out.cols();
            let dest = stitched.get_or_insert_with(|| Matrix::zeros(batch.rows(), cols));
            dest.as_mut_slice()[start * cols..end * cols].copy_from_slice(out.as_slice());
            all_stats.push(stats);
            start = end;
        }
        let stitched = stitched.expect("non-empty batch produced at least one chunk");
        Ok((stitched, all_stats))
    }

    /// Injects random bit flips into the resident model's weights — a
    /// fault-injection hook modeling on-chip SRAM upsets, for the
    /// robustness experiments the paper's "hardware failure" motivation
    /// implies. Returns the number of bits flipped.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoModelLoaded`] if no model is resident.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn inject_weight_faults(
        &self,
        rate: f64,
        rng: &mut hd_tensor::rng::DetRng,
    ) -> Result<usize> {
        let mut state = self.state.lock();
        let model = state.model.as_mut().ok_or(SimError::NoModelLoaded)?;
        Ok(model.inject_weight_faults(rate, rng))
    }

    /// A snapshot of the ordered record of every injected fault since
    /// device construction.
    pub fn fault_trace(&self) -> FaultTrace {
        self.state.lock().faults.trace().clone()
    }

    /// Whether the resident weights are currently parity-failed. Cleared
    /// by reloading a pristine model via [`Device::load_model`].
    pub fn weights_corrupt(&self) -> bool {
        self.state.lock().weights_corrupt
    }

    /// A snapshot of accumulated device activity.
    pub fn ledger(&self) -> TimingLedger {
        self.state.lock().ledger
    }

    /// Clears the activity ledger (models stay loaded).
    pub fn reset_ledger(&self) {
        self.state.lock().ledger = TimingLedger::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing;
    use hd_tensor::rng::DetRng;
    use wide_nn::{compile, Activation, ModelBuilder, QuantizedModel, TargetSpec};

    fn compiled_model(n: usize, d: usize, k: usize, seed: u64) -> (CompiledModel, Matrix) {
        let mut rng = DetRng::new(seed);
        let model = ModelBuilder::new(n)
            .fully_connected(Matrix::random_normal(n, d, &mut rng))
            .unwrap()
            .activation(Activation::Tanh)
            .fully_connected(Matrix::random_normal(d, k, &mut rng))
            .unwrap()
            .build()
            .unwrap();
        let calib = Matrix::random_normal(24, n, &mut rng);
        let compiled = compile::compile(&model, &calib, &TargetSpec::default()).unwrap();
        (compiled, calib)
    }

    #[test]
    fn invoke_without_model_fails() {
        let device = Device::new(DeviceConfig::default());
        assert_eq!(
            device.invoke(&Matrix::zeros(1, 4)).unwrap_err(),
            SimError::NoModelLoaded
        );
    }

    #[test]
    fn device_output_matches_reference_executor_bit_exact() {
        let (compiled, calib) = compiled_model(20, 96, 5, 1);
        let reference = compiled.quantized().clone();
        let device = Device::new(DeviceConfig::default());
        device.load_model(compiled).unwrap();
        let (device_out, _) = device.invoke(&calib).unwrap();
        let ref_out = reference.forward(&calib).unwrap();
        assert_eq!(
            device_out, ref_out,
            "device datapath diverged from reference"
        );
    }

    #[test]
    fn batch_width_is_checked() {
        let (compiled, _) = compiled_model(20, 64, 4, 2);
        let device = Device::new(DeviceConfig::default());
        device.load_model(compiled).unwrap();
        assert!(matches!(
            device.invoke(&Matrix::zeros(1, 21)).unwrap_err(),
            SimError::BatchWidth {
                expected: 20,
                actual: 21
            }
        ));
    }

    #[test]
    fn invoke_stats_match_analytic_estimate() {
        let (compiled, calib) = compiled_model(20, 96, 5, 3);
        let dims = ModelDims::from_compiled(&compiled);
        let cfg = DeviceConfig::default();
        let device = Device::new(cfg.clone());
        device.load_model(compiled).unwrap();
        let (_, stats) = device.invoke(&calib).unwrap();
        let est = timing::invoke_estimate(&cfg, &dims, calib.rows());
        assert_eq!(stats.compute_cycles, est.compute_cycles);
        assert!((stats.total_s - est.total_s).abs() < 1e-12);
    }

    #[test]
    fn oversized_model_rejected_at_load() {
        let mut cfg = DeviceConfig::default();
        cfg.target.param_buffer_bytes = 64;
        // compile() against a permissive target, load against the tiny one.
        let (compiled, _) = compiled_model(20, 64, 4, 4);
        let device = Device::new(cfg);
        assert!(matches!(
            device.load_model(compiled).unwrap_err(),
            SimError::BufferOverflow { .. }
        ));
        assert!(!device.model_loaded());
    }

    #[test]
    fn loading_second_model_evicts_first() {
        let (first, calib1) = compiled_model(20, 64, 4, 5);
        let (second, _) = compiled_model(30, 64, 4, 6);
        let device = Device::new(DeviceConfig::default());
        device.load_model(first).unwrap();
        device.load_model(second).unwrap();
        // Old 20-wide batches no longer fit; new model expects 30.
        assert!(matches!(
            device.invoke(&calib1).unwrap_err(),
            SimError::BatchWidth { expected: 30, .. }
        ));
    }

    #[test]
    fn unload_frees_buffer() {
        let (compiled, _) = compiled_model(20, 64, 4, 7);
        let device = Device::new(DeviceConfig::default());
        device.load_model(compiled).unwrap();
        assert!(device.model_loaded());
        device.unload_model();
        assert!(!device.model_loaded());
    }

    #[test]
    fn ledger_accumulates() {
        let (compiled, calib) = compiled_model(20, 64, 4, 8);
        let device = Device::new(DeviceConfig::default());
        let report = device.load_model(compiled).unwrap();
        device.invoke(&calib).unwrap();
        device.invoke(&calib).unwrap();
        let ledger = device.ledger();
        assert_eq!(ledger.invocations, 2);
        assert_eq!(ledger.samples, 2 * calib.rows() as u64);
        assert!(ledger.load_s > 0.0);
        assert!((ledger.load_s - report.total_s).abs() < 1e-12);
        device.reset_ledger();
        assert_eq!(device.ledger().invocations, 0);
    }

    #[test]
    fn chunked_invoke_matches_single_invoke_functionally() {
        let (compiled, calib) = compiled_model(20, 96, 5, 9);
        let device = Device::new(DeviceConfig::default());
        device.load_model(compiled).unwrap();
        let (single, _) = device.invoke(&calib).unwrap();
        let (chunked, stats) = device.invoke_chunked(&calib, 7).unwrap();
        assert_eq!(single, chunked);
        assert_eq!(stats.len(), calib.rows().div_ceil(7));
    }

    #[test]
    fn chunked_invoke_pays_overhead_per_chunk() {
        let (compiled, calib) = compiled_model(20, 96, 5, 10);
        let device = Device::new(DeviceConfig::default());
        device.load_model(compiled).unwrap();
        device.reset_ledger();
        let (_, stats) = device.invoke_chunked(&calib, 6).unwrap();
        let total_overhead: f64 = stats.iter().map(|s| s.overhead_s).sum();
        let expected = stats.len() as f64 * DeviceConfig::default().link.per_invoke_latency_s;
        assert!((total_overhead - expected).abs() < 1e-12);
    }

    #[test]
    fn device_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Device>();
    }

    #[test]
    fn load_report_charges_transfer_and_cycles() {
        let (compiled, _) = compiled_model(64, 128, 8, 11);
        let bytes = compiled.param_bytes();
        let device = Device::new(DeviceConfig::default());
        let report = device.load_model(compiled).unwrap();
        assert_eq!(report.param_bytes, bytes);
        assert!(report.transfer_s > 0.0);
        assert!(report.weight_load_cycles > 0);
        assert!(report.total_s >= report.transfer_s);
    }

    #[test]
    fn second_load_keeps_previous_model_on_failure() {
        let (good, calib) = compiled_model(20, 64, 4, 12);
        let device = Device::new(DeviceConfig::default());
        device.load_model(good).unwrap();

        // Build a model too big for the default 8 MiB buffer.
        let mut rng = DetRng::new(13);
        let model = ModelBuilder::new(1000)
            .fully_connected(Matrix::random_normal(1000, 9000, &mut rng))
            .unwrap()
            .build()
            .unwrap();
        let big_calib = Matrix::random_normal(4, 1000, &mut rng);
        let big_target = TargetSpec::new("big", 64, 64, 32 * 1024 * 1024);
        let big = compile::compile(&model, &big_calib, &big_target).unwrap();
        assert!(device.load_model(big).is_err());
        // Original model still answers.
        assert!(device.invoke(&calib).is_ok());
    }

    fn fault_device(fault: crate::FaultConfig) -> (Device, Matrix) {
        let (compiled, calib) = compiled_model(20, 96, 5, 21);
        let device = Device::new(DeviceConfig {
            fault,
            ..DeviceConfig::default()
        });
        device.load_model(compiled).unwrap();
        (device, calib)
    }

    #[test]
    fn transient_fault_retry_converges_bit_exact() {
        let fault = crate::FaultConfig::default()
            .with_seed(77)
            .with_transient_rate(0.5);
        let (device, calib) = fault_device(fault);
        let (clean, _) = fault_device(crate::FaultConfig::default());
        let (want, _) = clean.invoke(&calib).unwrap();

        let mut failures = 0;
        let got = loop {
            match device.invoke(&calib) {
                Ok((out, _)) => break out,
                Err(e) => {
                    assert_eq!(e, SimError::TransientInvokeFailure);
                    failures += 1;
                    assert!(failures < 64, "transient faults never cleared");
                }
            }
        };
        assert!(failures > 0, "rate 0.5 never fired in 64 attempts");
        assert_eq!(got, want, "retried invoke diverged from fault-free run");
        let ledger = device.ledger();
        assert_eq!(ledger.faulted_invocations, failures);
        assert_eq!(device.fault_trace().len() as u64, failures);
        // Each transient failure charges exactly the dispatch overhead.
        let overhead = DeviceConfig::default().link.per_invoke_latency_s;
        assert!((ledger.fault_s - failures as f64 * overhead).abs() < 1e-12);
        // Success buckets saw exactly one invocation.
        assert_eq!(ledger.invocations, 1);
    }

    #[test]
    fn weight_upset_rejects_until_reload() {
        let fault = crate::FaultConfig::default().with_weight_upset_rate(1.0);
        let (device, calib) = fault_device(fault);
        assert_eq!(
            device.invoke(&calib).unwrap_err(),
            SimError::WeightCorruption
        );
        assert!(device.weights_corrupt());
        // Still corrupt on the next attempt, independent of new draws.
        assert_eq!(
            device.invoke(&calib).unwrap_err(),
            SimError::WeightCorruption
        );
        let (pristine, _) = compiled_model(20, 96, 5, 21);
        device.load_model(pristine).unwrap();
        assert!(!device.weights_corrupt());
        assert_eq!(
            device
                .fault_trace()
                .count_kind(|k| matches!(k, FaultKind::WeightUpset)),
            2
        );
    }

    #[test]
    fn link_corruption_charges_overhead_plus_transfer() {
        let fault = crate::FaultConfig::default().with_link_corruption_rate(1.0);
        let (device, calib) = fault_device(fault);
        let err = device.invoke(&calib).unwrap_err();
        assert_eq!(
            err,
            SimError::LinkCorruption {
                direction: LinkDirection::HostToDevice,
                bytes: calib.rows() * calib.cols(),
            }
        );
        let cfg = DeviceConfig::default();
        let expected = cfg.link.per_invoke_latency_s
            + calib.rows() as f64 * calib.cols() as f64 / cfg.link.bandwidth_bytes_per_sec;
        let ledger = device.ledger();
        assert!((ledger.fault_s - expected).abs() < 1e-12);
        assert_eq!(device.fault_trace().records()[0].charged_s, expected);
    }

    #[test]
    fn fatal_hang_charges_exactly_the_deadline() {
        let fault = crate::FaultConfig::default().with_hang(1.0, 2.0);
        let (device, calib) = fault_device(fault);
        let deadline = 1e-3;
        let err = device
            .invoke_with_deadline(&calib, Some(deadline))
            .unwrap_err();
        match err {
            SimError::DeviceHang {
                elapsed_s,
                deadline_s,
            } => {
                assert!(elapsed_s > 2.0, "stall not included in elapsed");
                assert_eq!(deadline_s, deadline);
            }
            other => panic!("expected DeviceHang, got {other}"),
        }
        let ledger = device.ledger();
        assert_eq!(ledger.faulted_invocations, 1);
        assert!((ledger.fault_s - deadline).abs() < 1e-15);
        assert!(
            device
                .fault_trace()
                .count_kind(|k| matches!(k, FaultKind::Hang { fatal: true, .. }))
                == 1
        );
    }

    #[test]
    fn survivable_hang_slows_but_succeeds() {
        let stall = 0.25;
        let fault = crate::FaultConfig::default().with_hang(1.0, stall);
        let (device, calib) = fault_device(fault);
        let (clean, _) = fault_device(crate::FaultConfig::default());
        let (want, clean_stats) = clean.invoke(&calib).unwrap();
        let (got, stats) = device.invoke(&calib).unwrap();
        assert_eq!(got, want);
        assert!((stats.total_s - (clean_stats.total_s + stall)).abs() < 1e-12);
        assert_eq!(
            device
                .fault_trace()
                .count_kind(|k| matches!(k, FaultKind::Hang { fatal: false, .. })),
            1
        );
        assert!((device.ledger().fault_s - stall).abs() < 1e-15);
    }

    #[test]
    fn natural_deadline_overrun_hangs_without_trace() {
        let (device, calib) = fault_device(crate::FaultConfig::default());
        let err = device.invoke_with_deadline(&calib, Some(0.0)).unwrap_err();
        assert!(matches!(err, SimError::DeviceHang { .. }));
        assert!(device.fault_trace().is_empty());
        assert_eq!(device.ledger().faulted_invocations, 1);
    }

    #[test]
    fn same_seed_reproduces_identical_fault_trace() {
        let fault = crate::FaultConfig::default()
            .with_seed(5150)
            .with_transient_rate(0.2)
            .with_link_corruption_rate(0.1)
            .with_hang(0.1, 0.01);
        let (a, calib) = fault_device(fault);
        let (b, _) = fault_device(fault);
        for _ in 0..32 {
            let ra = a.invoke(&calib);
            let rb = b.invoke(&calib);
            assert_eq!(ra.is_ok(), rb.is_ok());
        }
        assert_eq!(a.fault_trace(), b.fault_trace());
        assert!(!a.fault_trace().is_empty(), "rates too low to exercise");
    }

    #[test]
    fn pipelined_outputs_bit_exact_with_chunked() {
        let (compiled, calib) = compiled_model(20, 96, 5, 15);
        let device = Device::new(DeviceConfig::default());
        device.load_model(compiled).unwrap();
        let (serial, _) = device.invoke_chunked(&calib, 7).unwrap();
        let (pipelined, stats) = device.invoke_pipelined(&calib, 7).unwrap();
        assert_eq!(serial, pipelined, "pipelining changed the datapath");
        assert_eq!(stats.len(), calib.rows().div_ceil(7));
    }

    #[test]
    fn overlapped_stats_match_analytic_pipelined_estimate() {
        let (compiled, calib) = compiled_model(20, 96, 5, 16);
        let dims = ModelDims::from_compiled(&compiled);
        let cfg = DeviceConfig::default();
        let device = Device::new(cfg.clone());
        device.load_model(compiled).unwrap();
        let (_, stats) = device.invoke_overlapped(&calib).unwrap();
        let est = timing::invoke_estimate_pipelined(&cfg, &dims, calib.rows());
        assert_eq!(stats.compute_cycles, est.compute_cycles);
        assert!((stats.total_s - est.total_s).abs() < 1e-12);
    }

    #[test]
    fn pipelined_ledger_matches_batched_pipelined_formula() {
        let (compiled, calib) = compiled_model(20, 96, 5, 17);
        let dims = ModelDims::from_compiled(&compiled);
        let cfg = DeviceConfig::default();
        let device = Device::new(cfg.clone());
        device.load_model(compiled).unwrap();
        device.reset_ledger();
        let (_, stats) = device.invoke_pipelined(&calib, 7).unwrap();
        let total: f64 = stats.iter().map(|s| s.total_s).sum();
        let expected = timing::batched_time_pipelined_s(&cfg, &dims, calib.rows(), 7);
        assert!((total - expected).abs() < 1e-12);
        let ledger = device.ledger();
        assert!((ledger.total_s - expected).abs() < 1e-12);
        // The overlap buckets partition the transfer time ...
        let parts = ledger.overlapped_s + ledger.exposed_transfer_s;
        assert!((parts - ledger.transfer_s).abs() < 1e-15);
        assert!(ledger.overlapped_s > 0.0, "nothing overlapped");
        // ... and the pipelined total decomposes along the critical path.
        let critical = ledger.overhead_s + ledger.compute_s + ledger.exposed_transfer_s;
        assert!((ledger.total_s - critical).abs() < 1e-12);
    }

    #[test]
    fn serial_invocations_expose_their_full_transfer() {
        let (compiled, calib) = compiled_model(20, 96, 5, 18);
        let device = Device::new(DeviceConfig::default());
        device.load_model(compiled).unwrap();
        device.reset_ledger();
        device.invoke_chunked(&calib, 7).unwrap();
        let ledger = device.ledger();
        assert_eq!(ledger.overlapped_s, 0.0);
        assert!((ledger.exposed_transfer_s - ledger.transfer_s).abs() < 1e-15);
    }

    #[test]
    fn pipelined_survivable_hang_charges_stall() {
        let stall = 0.25;
        let fault = crate::FaultConfig::default().with_hang(1.0, stall);
        let (device, calib) = fault_device(fault);
        let (clean, _) = fault_device(crate::FaultConfig::default());
        let (want, clean_stats) = clean.invoke_overlapped(&calib).unwrap();
        let (got, stats) = device.invoke_overlapped(&calib).unwrap();
        assert_eq!(got, want);
        assert!((stats.total_s - (clean_stats.total_s + stall)).abs() < 1e-12);
        assert!((device.ledger().fault_s - stall).abs() < 1e-15);
    }

    #[test]
    fn quantized_model_reference_and_device_agree_on_argmax() {
        let (compiled, calib) = compiled_model(16, 80, 6, 14);
        let reference: QuantizedModel = compiled.quantized().clone();
        let device = Device::new(DeviceConfig::default());
        device.load_model(compiled).unwrap();
        let (out, _) = device.invoke(&calib).unwrap();
        let ref_out = reference.forward(&calib).unwrap();
        for r in 0..calib.rows() {
            assert_eq!(
                hd_tensor::ops::argmax(out.row(r)).unwrap(),
                hd_tensor::ops::argmax(ref_out.row(r)).unwrap()
            );
        }
    }
}
