//! Analytic timing formulas shared by the functional device and the
//! paper-scale benchmark harness.
//!
//! The accuracy experiments execute reduced-size workloads functionally,
//! but the *runtime* figures (paper Figs. 5, 6, 8, 9, 10 and Table II) are
//! computed from these closed-form models at the paper's full scale — the
//! same separation the paper itself relies on when normalizing runtimes.
//! [`Device::invoke`](crate::Device::invoke) charges exactly these
//! formulas, and a unit test pins the two paths to equality.

use serde::{Deserialize, Serialize};

use wide_nn::{CompiledModel, Model, QuantizedModel};

use crate::config::DeviceConfig;
use crate::systolic::SystolicArray;

/// Shape summary of a model: everything the timing model needs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelDims {
    /// Feature width consumed per sample.
    pub input_dim: usize,
    /// `(k, n)` of each fully-connected layer, in order.
    pub fc_layers: Vec<(usize, usize)>,
    /// Output width of each activation (LUT) layer, in order.
    pub lut_widths: Vec<usize>,
    /// Width produced per sample.
    pub output_dim: usize,
}

impl ModelDims {
    /// Dimensions of the paper's encoder half: `n -> d` with a `tanh`.
    #[must_use]
    pub fn encoder(n: usize, d: usize) -> Self {
        ModelDims {
            input_dim: n,
            fc_layers: vec![(n, d)],
            lut_widths: vec![d],
            output_dim: d,
        }
    }

    /// Dimensions of the paper's full three-layer inference network:
    /// `n -> d -> k` with a `tanh` in the middle.
    #[must_use]
    pub fn inference(n: usize, d: usize, k: usize) -> Self {
        ModelDims {
            input_dim: n,
            fc_layers: vec![(n, d), (d, k)],
            lut_widths: vec![d],
            output_dim: k,
        }
    }

    /// Extracts dimensions from a float model.
    #[must_use]
    pub fn from_model(model: &Model) -> Self {
        let mut dims = ModelDims {
            input_dim: model.input_dim(),
            fc_layers: Vec::new(),
            lut_widths: Vec::new(),
            output_dim: model.output_dim(),
        };
        let mut width = model.input_dim();
        for layer in model.layers() {
            match layer {
                wide_nn::Layer::FullyConnected { weights } => {
                    dims.fc_layers.push((weights.rows(), weights.cols()));
                    width = weights.cols();
                }
                wide_nn::Layer::Activation(_) => dims.lut_widths.push(width),
                wide_nn::Layer::Elementwise { .. } => {}
            }
        }
        dims
    }

    /// Extracts dimensions from a quantized model.
    #[must_use]
    pub fn from_quantized(model: &QuantizedModel) -> Self {
        let mut dims = ModelDims {
            input_dim: model.input_dim(),
            fc_layers: Vec::new(),
            lut_widths: Vec::new(),
            output_dim: model.output_dim(),
        };
        let mut width = model.input_dim();
        for stage in model.stages() {
            match stage {
                wide_nn::QuantStage::FullyConnected { weights, .. } => {
                    dims.fc_layers.push(weights.shape());
                    width = weights.cols();
                }
                wide_nn::QuantStage::FullyConnectedPerChannel { weights, .. } => {
                    dims.fc_layers.push((weights.rows(), weights.cols()));
                    width = weights.cols();
                }
                wide_nn::QuantStage::Lut(_) => dims.lut_widths.push(width),
            }
        }
        dims
    }

    /// Extracts dimensions from a compiled model.
    #[must_use]
    pub fn from_compiled(compiled: &CompiledModel) -> Self {
        let mut dims = ModelDims {
            input_dim: compiled.input_dim(),
            fc_layers: Vec::new(),
            lut_widths: Vec::new(),
            output_dim: compiled.output_dim(),
        };
        let mut width = compiled.input_dim();
        for stage in compiled.quantized().stages() {
            match stage {
                wide_nn::QuantStage::FullyConnected { weights, .. } => {
                    dims.fc_layers.push(weights.shape());
                    width = weights.cols();
                }
                wide_nn::QuantStage::FullyConnectedPerChannel { weights, .. } => {
                    dims.fc_layers.push((weights.rows(), weights.cols()));
                    width = weights.cols();
                }
                wide_nn::QuantStage::Lut(_) => dims.lut_widths.push(width),
            }
        }
        dims
    }

    /// Total quantized parameter bytes (weights plus 256-byte LUTs).
    pub fn param_bytes(&self) -> usize {
        self.fc_layers.iter().map(|(k, n)| k * n).sum::<usize>() + 256 * self.lut_widths.len()
    }
}

/// Per-invocation time breakdown, all in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InvokeEstimate {
    /// Samples in the invocation.
    pub samples: usize,
    /// Fixed dispatch overhead.
    pub overhead_s: f64,
    /// Host-to-device input payload time.
    pub input_transfer_s: f64,
    /// MXU + activation-unit time.
    pub compute_s: f64,
    /// Device-to-host output payload time.
    pub output_transfer_s: f64,
    /// Total MXU/activation cycles.
    pub compute_cycles: u64,
    /// Sum of all components.
    pub total_s: f64,
}

/// Per-firing cost of each pipeline stage of one invocation, in seconds
/// — the raw inputs a dataflow scheduler (or the static schedule
/// analyzer in `hd-analysis`) needs, without committing to any
/// serial/overlapped composition. [`invoke_estimate`] composes these
/// serially; a double-buffered driver overlaps the link stages with
/// compute ([`invoke_estimate_pipelined`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageCosts {
    /// Fixed per-invocation dispatch overhead (cannot be hidden).
    pub overhead_s: f64,
    /// Host-to-device input DMA time on the link.
    pub input_transfer_s: f64,
    /// MXU + activation-unit time on the device.
    pub compute_s: f64,
    /// Device-to-host output DMA time on the link.
    pub output_transfer_s: f64,
    /// Total MXU/activation cycles behind `compute_s`.
    pub compute_cycles: u64,
}

/// Per-stage costs of invoking a model with the given dimensions on
/// `samples` rows. This is the cost model that parameterizes declared
/// SDF schedule graphs; [`invoke_estimate`] is its serial composition.
pub fn stage_costs(cfg: &DeviceConfig, dims: &ModelDims, samples: usize) -> StageCosts {
    let array = SystolicArray::new(cfg.target.array_rows, cfg.target.array_cols);
    let bw = cfg.link.bandwidth_bytes_per_sec;

    let mut cycles: u64 = 0;
    for &(k, n) in &dims.fc_layers {
        cycles += array.stream_cycles(samples, k, n);
    }
    for &w in &dims.lut_widths {
        cycles += array.activation_cycles(samples * w);
    }

    StageCosts {
        overhead_s: cfg.link.per_invoke_latency_s,
        input_transfer_s: (samples * dims.input_dim) as f64 / bw,
        compute_s: cycles as f64 / cfg.clock_hz,
        output_transfer_s: (samples * dims.output_dim) as f64 / bw,
        compute_cycles: cycles,
    }
}

/// Estimates one invocation of a model with the given dimensions on
/// `samples` rows.
///
/// # Examples
///
/// ```
/// use tpu_sim::{timing, DeviceConfig};
///
/// let cfg = DeviceConfig::default();
/// let dims = timing::ModelDims::encoder(784, 10_000);
/// let est = timing::invoke_estimate(&cfg, &dims, 256);
/// assert!(est.total_s > 0.0);
/// // Output transfer (256 x 10000 bytes) dominates the input transfer.
/// assert!(est.output_transfer_s > est.input_transfer_s);
/// ```
pub fn invoke_estimate(cfg: &DeviceConfig, dims: &ModelDims, samples: usize) -> InvokeEstimate {
    let costs = stage_costs(cfg, dims, samples);
    InvokeEstimate {
        samples,
        overhead_s: costs.overhead_s,
        input_transfer_s: costs.input_transfer_s,
        compute_s: costs.compute_s,
        output_transfer_s: costs.output_transfer_s,
        compute_cycles: costs.compute_cycles,
        total_s: costs.overhead_s
            + costs.input_transfer_s
            + costs.compute_s
            + costs.output_transfer_s,
    }
}

/// [`invoke_estimate`] under a double-buffered driver that overlaps the
/// host-link transfers of one chunk with the MXU compute of the previous
/// one: per steady-state chunk the cost is the *maximum* of transfer and
/// compute instead of their sum (dispatch overhead cannot be hidden).
pub fn invoke_estimate_pipelined(
    cfg: &DeviceConfig,
    dims: &ModelDims,
    samples: usize,
) -> InvokeEstimate {
    let serial = invoke_estimate(cfg, dims, samples);
    let transfer = serial.input_transfer_s + serial.output_transfer_s;
    let overlapped = transfer.max(serial.compute_s);
    InvokeEstimate {
        total_s: serial.overhead_s + overlapped,
        ..serial
    }
}

/// Estimates processing `total_samples` rows through a double-buffered
/// driver (see [`invoke_estimate_pipelined`]).
///
/// # Panics
///
/// Panics if `batch == 0`.
pub fn batched_time_pipelined_s(
    cfg: &DeviceConfig,
    dims: &ModelDims,
    total_samples: usize,
    batch: usize,
) -> f64 {
    assert!(batch > 0, "batch must be positive");
    let full_chunks = total_samples / batch;
    let remainder = total_samples % batch;
    let mut t = full_chunks as f64 * invoke_estimate_pipelined(cfg, dims, batch).total_s;
    if remainder > 0 {
        t += invoke_estimate_pipelined(cfg, dims, remainder).total_s;
    }
    t
}

/// Estimates processing `total_samples` rows in invocations of at most
/// `batch` rows (the last chunk may be partial), returning total seconds.
///
/// # Panics
///
/// Panics if `batch == 0`.
pub fn batched_time_s(
    cfg: &DeviceConfig,
    dims: &ModelDims,
    total_samples: usize,
    batch: usize,
) -> f64 {
    assert!(batch > 0, "batch must be positive");
    let full_chunks = total_samples / batch;
    let remainder = total_samples % batch;
    let mut t = full_chunks as f64 * invoke_estimate(cfg, dims, batch).total_s;
    if remainder > 0 {
        t += invoke_estimate(cfg, dims, remainder).total_s;
    }
    t
}

/// Estimates the one-time model load: parameter transfer over the link
/// plus shifting the weights into the array.
pub fn load_time_s(cfg: &DeviceConfig, dims: &ModelDims) -> f64 {
    let array = SystolicArray::new(cfg.target.array_rows, cfg.target.array_cols);
    let transfer = dims.param_bytes() as f64 / cfg.link.bandwidth_bytes_per_sec;
    let mut cycles = 0u64;
    for &(k, n) in &dims.fc_layers {
        cycles += array.weight_load_cycles(k, n);
    }
    transfer + cycles as f64 / cfg.clock_hz
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoder_and_inference_dims() {
        let e = ModelDims::encoder(784, 10_000);
        assert_eq!(e.fc_layers, vec![(784, 10_000)]);
        assert_eq!(e.output_dim, 10_000);
        let i = ModelDims::inference(784, 10_000, 10);
        assert_eq!(i.fc_layers, vec![(784, 10_000), (10_000, 10)]);
        assert_eq!(i.output_dim, 10);
    }

    #[test]
    fn invoke_estimate_components_sum() {
        let cfg = DeviceConfig::default();
        let dims = ModelDims::inference(128, 1024, 8);
        let est = invoke_estimate(&cfg, &dims, 16);
        let sum = est.overhead_s + est.input_transfer_s + est.compute_s + est.output_transfer_s;
        assert!((est.total_s - sum).abs() < 1e-12);
    }

    #[test]
    fn stage_costs_match_invoke_estimate_components() {
        let cfg = DeviceConfig::default();
        let dims = ModelDims::inference(128, 1024, 8);
        for samples in [1usize, 7, 64] {
            let costs = stage_costs(&cfg, &dims, samples);
            let est = invoke_estimate(&cfg, &dims, samples);
            assert!((costs.overhead_s - est.overhead_s).abs() < 1e-15);
            assert!((costs.input_transfer_s - est.input_transfer_s).abs() < 1e-15);
            assert!((costs.compute_s - est.compute_s).abs() < 1e-15);
            assert!((costs.output_transfer_s - est.output_transfer_s).abs() < 1e-15);
            assert_eq!(costs.compute_cycles, est.compute_cycles);
        }
    }

    #[test]
    fn larger_batch_amortizes_overhead() {
        let cfg = DeviceConfig::default();
        let dims = ModelDims::encoder(784, 10_000);
        let per_sample_small = invoke_estimate(&cfg, &dims, 8).total_s / 8.0;
        let per_sample_big = invoke_estimate(&cfg, &dims, 256).total_s / 256.0;
        assert!(per_sample_big < per_sample_small);
    }

    #[test]
    fn batched_time_handles_remainder() {
        let cfg = DeviceConfig::default();
        let dims = ModelDims::encoder(64, 256);
        let t_exact = batched_time_s(&cfg, &dims, 100, 32);
        let expected = 3.0 * invoke_estimate(&cfg, &dims, 32).total_s
            + invoke_estimate(&cfg, &dims, 4).total_s;
        assert!((t_exact - expected).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "batch must be positive")]
    fn zero_batch_panics() {
        let cfg = DeviceConfig::default();
        let dims = ModelDims::encoder(4, 8);
        let _ = batched_time_s(&cfg, &dims, 10, 0);
    }

    #[test]
    fn pipelined_is_never_slower_and_hides_the_smaller_term() {
        let cfg = DeviceConfig::default();
        let dims = ModelDims::encoder(784, 10_000);
        for samples in [1usize, 16, 256] {
            let serial = invoke_estimate(&cfg, &dims, samples);
            let piped = invoke_estimate_pipelined(&cfg, &dims, samples);
            assert!(piped.total_s <= serial.total_s + 1e-15);
            let transfer = serial.input_transfer_s + serial.output_transfer_s;
            let expected = serial.overhead_s + transfer.max(serial.compute_s);
            assert!((piped.total_s - expected).abs() < 1e-15);
        }
    }

    #[test]
    fn pipelined_batched_time_sums_chunks() {
        let cfg = DeviceConfig::default();
        let dims = ModelDims::encoder(64, 512);
        let t = batched_time_pipelined_s(&cfg, &dims, 70, 32);
        let expected = 2.0 * invoke_estimate_pipelined(&cfg, &dims, 32).total_s
            + invoke_estimate_pipelined(&cfg, &dims, 6).total_s;
        assert!((t - expected).abs() < 1e-12);
    }

    #[test]
    fn load_time_scales_with_params() {
        let cfg = DeviceConfig::default();
        let small = load_time_s(&cfg, &ModelDims::encoder(64, 256));
        let big = load_time_s(&cfg, &ModelDims::encoder(784, 10_000));
        assert!(big > small * 10.0);
    }

    #[test]
    fn paper_scale_encode_speedup_shape() {
        // The headline calibration: MNIST-like encoding (784 features,
        // d = 10000) on the accelerator at batch 256 lands in the high
        // single digits of speedup against a 35 GFLOP/s host — Fig. 10's
        // upper end and Fig. 5's MNIST bar.
        let cfg = DeviceConfig::default();
        let dims = ModelDims::encoder(784, 10_000);
        let tpu_per_sample = invoke_estimate(&cfg, &dims, 256).total_s / 256.0;
        let cpu_per_sample = 2.0 * 784.0 * 10_000.0 / 35.0e9;
        let speedup = cpu_per_sample / tpu_per_sample;
        assert!(
            (5.0..20.0).contains(&speedup),
            "encode speedup {speedup} outside the paper's regime"
        );
    }

    #[test]
    fn few_feature_encode_loses_to_cpu() {
        // The PAMAP2 effect: with 27 features the fixed output transfer
        // dominates and the accelerator stops paying off (paper Fig. 5's
        // counterexample dataset).
        let cfg = DeviceConfig::default();
        let dims = ModelDims::encoder(27, 10_000);
        let tpu_per_sample = invoke_estimate(&cfg, &dims, 256).total_s / 256.0;
        let cpu_per_sample = 2.0 * 27.0 * 10_000.0 / 35.0e9;
        assert!(
            tpu_per_sample > cpu_per_sample,
            "PAMAP2-like encode should not speed up"
        );
    }

    #[test]
    fn param_bytes_counts_luts() {
        let dims = ModelDims::inference(10, 20, 3);
        assert_eq!(dims.param_bytes(), 10 * 20 + 20 * 3 + 256);
    }
}
