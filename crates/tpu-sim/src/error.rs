use std::error::Error;
use std::fmt;

use wide_nn::NnError;

use crate::fault::LinkDirection;

/// Error type for simulated-device operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// `invoke` was called before any model was loaded.
    NoModelLoaded,
    /// The invocation batch width does not match the loaded model.
    BatchWidth {
        /// Input width of the loaded model.
        expected: usize,
        /// Width of the batch that was supplied.
        actual: usize,
    },
    /// The model does not fit the on-chip parameter buffer.
    BufferOverflow {
        /// Bytes the model requires.
        required: usize,
        /// Bytes the buffer provides.
        available: usize,
    },
    /// A model-layer error surfaced during execution.
    Nn(NnError),
    /// An injected transient dispatch failure: the invocation never
    /// started. Retrying is safe and converges to the fault-free output.
    TransientInvokeFailure,
    /// A host-link payload failed its CRC; the transfer must be redone.
    LinkCorruption {
        /// Transfer direction.
        direction: LinkDirection,
        /// Payload bytes in flight.
        bytes: usize,
    },
    /// The resident weights failed their parity check (SRAM upset). The
    /// device rejects every invocation until a pristine model is
    /// reloaded via [`crate::Device::load_model`].
    WeightCorruption,
    /// The device hung and the invocation blew its watchdog deadline.
    DeviceHang {
        /// Simulated seconds the invocation would have taken.
        elapsed_s: f64,
        /// The deadline that fired.
        deadline_s: f64,
    },
    /// A link or fault configuration value was out of range.
    InvalidConfig(String),
}

impl SimError {
    /// Whether this error is a (detected) device fault that a driver may
    /// recover from — by retrying, reloading the model, or both — as
    /// opposed to a caller bug like a shape mismatch.
    pub fn is_fault(&self) -> bool {
        matches!(
            self,
            SimError::TransientInvokeFailure
                | SimError::LinkCorruption { .. }
                | SimError::WeightCorruption
                | SimError::DeviceHang { .. }
        )
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoModelLoaded => write!(f, "no model loaded on device"),
            SimError::BatchWidth { expected, actual } => {
                write!(
                    f,
                    "batch has {actual} features, loaded model expects {expected}"
                )
            }
            SimError::BufferOverflow {
                required,
                available,
            } => write!(
                f,
                "model needs {required} bytes of on-chip buffer, device has {available}"
            ),
            SimError::Nn(e) => write!(f, "model error: {e}"),
            SimError::TransientInvokeFailure => {
                write!(f, "transient dispatch failure, invocation never started")
            }
            SimError::LinkCorruption { direction, bytes } => {
                write!(f, "{direction} payload of {bytes} bytes failed link CRC")
            }
            SimError::WeightCorruption => write!(
                f,
                "resident weights failed parity (SRAM upset); reload the model"
            ),
            SimError::DeviceHang {
                elapsed_s,
                deadline_s,
            } => write!(
                f,
                "device hang: invocation needed {elapsed_s:.6}s, watchdog fired at {deadline_s:.6}s"
            ),
            SimError::InvalidConfig(msg) => write!(f, "invalid simulator config: {msg}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for SimError {
    fn from(e: NnError) -> Self {
        SimError::Nn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(
            SimError::NoModelLoaded.to_string(),
            "no model loaded on device"
        );
        assert!(SimError::BatchWidth {
            expected: 4,
            actual: 5
        }
        .to_string()
        .contains("expects 4"));
        assert!(SimError::BufferOverflow {
            required: 10,
            available: 5
        }
        .to_string()
        .contains("10 bytes"));
    }

    #[test]
    fn fault_variants_display_and_classify() {
        let faults = [
            SimError::TransientInvokeFailure,
            SimError::LinkCorruption {
                direction: LinkDirection::HostToDevice,
                bytes: 128,
            },
            SimError::WeightCorruption,
            SimError::DeviceHang {
                elapsed_s: 0.2,
                deadline_s: 0.1,
            },
        ];
        for e in &faults {
            assert!(e.is_fault(), "{e}");
            assert!(!e.to_string().is_empty());
        }
        assert!(!SimError::NoModelLoaded.is_fault());
        assert!(!SimError::InvalidConfig("x".into()).is_fault());
        assert!(SimError::LinkCorruption {
            direction: LinkDirection::DeviceToHost,
            bytes: 5
        }
        .to_string()
        .contains("device-to-host"));
        assert!(SimError::InvalidConfig("bad rate".into())
            .to_string()
            .contains("bad rate"));
    }

    #[test]
    fn nn_error_converts() {
        let e: SimError = NnError::EmptyModel.into();
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
