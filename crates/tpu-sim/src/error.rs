use std::error::Error;
use std::fmt;

use wide_nn::NnError;

/// Error type for simulated-device operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// `invoke` was called before any model was loaded.
    NoModelLoaded,
    /// The invocation batch width does not match the loaded model.
    BatchWidth {
        /// Input width of the loaded model.
        expected: usize,
        /// Width of the batch that was supplied.
        actual: usize,
    },
    /// The model does not fit the on-chip parameter buffer.
    BufferOverflow {
        /// Bytes the model requires.
        required: usize,
        /// Bytes the buffer provides.
        available: usize,
    },
    /// A model-layer error surfaced during execution.
    Nn(NnError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoModelLoaded => write!(f, "no model loaded on device"),
            SimError::BatchWidth { expected, actual } => {
                write!(
                    f,
                    "batch has {actual} features, loaded model expects {expected}"
                )
            }
            SimError::BufferOverflow {
                required,
                available,
            } => write!(
                f,
                "model needs {required} bytes of on-chip buffer, device has {available}"
            ),
            SimError::Nn(e) => write!(f, "model error: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for SimError {
    fn from(e: NnError) -> Self {
        SimError::Nn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(
            SimError::NoModelLoaded.to_string(),
            "no model loaded on device"
        );
        assert!(SimError::BatchWidth {
            expected: 4,
            actual: 5
        }
        .to_string()
        .contains("expects 4"));
        assert!(SimError::BufferOverflow {
            required: 10,
            available: 5
        }
        .to_string()
        .contains("10 bytes"));
    }

    #[test]
    fn nn_error_converts() {
        let e: SimError = NnError::EmptyModel.into();
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
