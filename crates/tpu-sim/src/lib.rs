//! Cycle-approximate systolic-array edge accelerator simulator.
//!
//! The paper runs HDC on a Google Edge TPU attached over USB. That part is
//! hardware we do not have, so this crate builds the closest synthetic
//! equivalent from first principles:
//!
//! * [`SystolicArray`] — a weight-stationary grid of int8
//!   multiply-accumulate processing elements with a pipeline fill/drain
//!   cycle model (the Edge TPU's MXU),
//! * [`UnifiedBuffer`] — the on-chip parameter store that must hold a
//!   model's weights (8 MiB on the real device),
//! * [`HostLink`] — a USB-like channel with finite bandwidth and a fixed
//!   per-invocation dispatch latency,
//! * [`Device`] — the user-facing accelerator: load a compiled model once
//!   (one-time cost, like the paper's model-preparation phase), then
//!   invoke it on batches and receive both **functionally exact int8
//!   outputs** (bit-identical to [`wide_nn::QuantizedModel`]'s reference
//!   executor — an integration test pins this) and a per-invocation
//!   [`InvokeStats`] timing breakdown,
//! * [`timing`] — the shared analytic formulas, usable standalone to
//!   estimate paper-scale workloads without executing them.
//!
//! # Timing model
//!
//! One invocation of a loaded model on `s` samples costs
//!
//! ```text
//! t = overhead                                  (driver + USB dispatch)
//!   + in_bytes / bandwidth                      (s x input_dim, int8)
//!   + sum_fc  tiles_k*tiles_n*(s + R + C) / f   (MXU streaming)
//!   + sum_lut ceil(s*width / C) / f             (activation unit)
//!   + out_bytes / bandwidth                     (s x output_dim, int8)
//! ```
//!
//! with `R x C` the array shape and `f` the clock. Loading a model costs
//! `param_bytes / bandwidth` plus `tiles * R / f` of weight-load cycles,
//! charged once — matching the paper's observation that model preparation
//! is a one-time cost excluded from inference runtime.
//!
//! # Examples
//!
//! ```
//! use hd_tensor::{rng::DetRng, Matrix};
//! use tpu_sim::{Device, DeviceConfig};
//! use wide_nn::{compile, Activation, ModelBuilder, TargetSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = DetRng::new(5);
//! let model = ModelBuilder::new(16)
//!     .fully_connected(Matrix::random_normal(16, 64, &mut rng))?
//!     .activation(Activation::Tanh)
//!     .build()?;
//! let calib = Matrix::random_normal(8, 16, &mut rng);
//! let compiled = compile::compile(&model, &calib, &TargetSpec::default())?;
//!
//! let device = Device::new(DeviceConfig::default());
//! device.load_model(compiled)?;
//! let (out, stats) = device.invoke(&calib)?;
//! assert_eq!(out.shape(), (8, 64));
//! assert!(stats.total_s > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod config;
mod device;
mod error;
mod fault;
mod link;
mod systolic;

pub mod timing;

pub use buffer::UnifiedBuffer;
pub use config::{DeviceConfig, HostLinkConfig};
pub use device::{Device, InvokeStats, LoadReport, TimingLedger};
pub use error::SimError;
pub use fault::{FaultConfig, FaultKind, FaultRecord, FaultTrace, LinkDirection};
pub use link::HostLink;
pub use systolic::SystolicArray;

/// Convenience result alias for fallible simulator operations.
pub type Result<T> = std::result::Result<T, SimError>;
