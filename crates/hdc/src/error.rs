use std::error::Error;
use std::fmt;

use hd_tensor::TensorError;

/// Error type for HDC operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HdcError {
    /// A label referenced a class index at or beyond the class count.
    LabelOutOfRange {
        /// The offending label value.
        label: usize,
        /// The number of classes the model was configured with.
        classes: usize,
    },
    /// The number of labels does not match the number of samples.
    LabelCount {
        /// Number of sample rows supplied.
        samples: usize,
        /// Number of labels supplied.
        labels: usize,
    },
    /// Training requires at least one sample and one class.
    EmptyDataset,
    /// A configuration value was invalid (zero dimension, zero
    /// iterations, non-positive learning rate).
    InvalidConfig(&'static str),
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// An execution backend could not run a phase (device compile/load
    /// failures, or an update phase the backend cannot place).
    Backend(String),
}

impl fmt::Display for HdcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HdcError::LabelOutOfRange { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
            HdcError::LabelCount { samples, labels } => {
                write!(f, "{labels} labels provided for {samples} samples")
            }
            HdcError::EmptyDataset => write!(f, "dataset has no samples or no classes"),
            HdcError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            HdcError::Tensor(e) => write!(f, "tensor error: {e}"),
            HdcError::Backend(msg) => write!(f, "execution backend error: {msg}"),
        }
    }
}

impl Error for HdcError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HdcError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for HdcError {
    fn from(e: TensorError) -> Self {
        HdcError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(
            HdcError::LabelOutOfRange {
                label: 9,
                classes: 5
            }
            .to_string(),
            "label 9 out of range for 5 classes"
        );
        assert!(HdcError::EmptyDataset.to_string().contains("no samples"));
        assert!(HdcError::InvalidConfig("dim is zero")
            .to_string()
            .contains("dim is zero"));
    }

    #[test]
    fn tensor_source_chains() {
        let e: HdcError = TensorError::EmptyDimension { op: "x" }.into();
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HdcError>();
    }
}
