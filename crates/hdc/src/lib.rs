//! Hyperdimensional computing core: non-linear encoding, class-hypervector
//! training, and similarity-based classification.
//!
//! This crate is the *algorithm* half of the paper, independent of any
//! accelerator: it implements exactly the three HDC operations of
//! Section III-A —
//!
//! 1. **Encoding** ([`NonlinearEncoder`]): an `n`-feature sample `F` maps
//!    to a `d`-dimensional hypervector `E = tanh(f1 B1 + ... + fn Bn)`
//!    where the base hypervectors `B_i ~ N(0, 1)^d` are nearly orthogonal,
//! 2. **Class-hypervector update** ([`train_encoded`]): mispredicted
//!    samples *bundle* into their true class (`C_a += lambda E`) and
//!    *detach* from the predicted one (`C_b -= lambda E`),
//! 3. **Classification** ([`HdcModel::predict`]): the class with the
//!    highest similarity (dot product, approximating cosine) wins.
//!
//! # Examples
//!
//! ```
//! use hd_tensor::{rng::DetRng, Matrix};
//! use hdc::{HdcModel, TrainConfig};
//!
//! # fn main() -> Result<(), hdc::HdcError> {
//! // Two trivially separable classes in 4 features.
//! let features = Matrix::from_rows(&[
//!     &[1.0, 1.0, 0.0, 0.0],
//!     &[0.9, 1.1, 0.1, 0.0],
//!     &[0.0, 0.0, 1.0, 1.0],
//!     &[0.1, 0.0, 0.9, 1.1],
//! ])?;
//! let labels = vec![0, 0, 1, 1];
//! let config = TrainConfig::new(512).with_iterations(5).with_seed(7);
//! let (model, stats) = HdcModel::fit(&features, &labels, 2, &config)?;
//! assert_eq!(model.predict(&features)?, labels);
//! assert!(stats.final_train_accuracy() > 0.9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bipolar;
mod encoder;
mod error;
mod exec;
mod model;
mod train;

pub mod eval;
pub mod regen;
pub mod serialize;

pub use encoder::{BaseHypervectors, Encoder, EncoderActivation, LinearEncoder, NonlinearEncoder};
pub use error::HdcError;
pub use exec::{Executor, HostExecutor};
pub use model::{ClassHypervectors, HdcModel, Similarity};
pub use train::{
    predict_batch, train_encoded, train_encoded_streamed, train_encoded_tracked,
    train_encoded_warm, IterationStats, OnlineTrainer, TrainConfig, TrainStats,
};

/// Convenience result alias for fallible HDC operations.
pub type Result<T> = std::result::Result<T, HdcError>;
