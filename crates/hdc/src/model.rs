use serde::{Deserialize, Serialize};

use hd_tensor::rng::DetRng;
use hd_tensor::{gemm, ops, Matrix};

use crate::encoder::{BaseHypervectors, Encoder, NonlinearEncoder};
use crate::error::HdcError;
use crate::train::{train_encoded, TrainConfig, TrainStats};
use crate::Result;

/// How query-to-class similarity is computed during classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Similarity {
    /// Plain dot product — the paper's accelerator-friendly approximation
    /// (`delta(E, C) = E . C`), a pure MAC loop.
    #[default]
    Dot,
    /// Full cosine similarity, normalizing by both operands' norms. More
    /// expensive; used as the accuracy reference.
    Cosine,
}

/// The trained class hypervectors: a `d x k` matrix whose column `j` is
/// the class hypervector `C_j`.
///
/// Stored transposed relative to the intuitive `k x d` layout so that the
/// similarity search is directly the second-half wide-NN layer
/// `scores = E x C`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassHypervectors {
    matrix: Matrix,
}

impl ClassHypervectors {
    /// All-zero class hypervectors (the paper's training start state).
    #[must_use]
    pub fn zeros(d: usize, k: usize) -> Self {
        ClassHypervectors {
            matrix: Matrix::zeros(d, k),
        }
    }

    /// Wraps an existing `d x k` matrix (used by the bagging merge).
    #[must_use]
    pub fn from_matrix(matrix: Matrix) -> Self {
        ClassHypervectors { matrix }
    }

    /// Hypervector dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.matrix.rows()
    }

    /// Number of classes `k`.
    pub fn class_count(&self) -> usize {
        self.matrix.cols()
    }

    /// The underlying `d x k` matrix — the second-layer weights of the
    /// paper's wide-NN interpretation.
    pub fn as_matrix(&self) -> &Matrix {
        &self.matrix
    }

    /// Mutable access for the training loop.
    pub(crate) fn as_matrix_mut(&mut self) -> &mut Matrix {
        &mut self.matrix
    }

    /// Consumes `self` and returns the underlying matrix.
    pub fn into_matrix(self) -> Matrix {
        self.matrix
    }

    /// Copies class `j`'s hypervector out as a contiguous vector.
    ///
    /// # Errors
    ///
    /// Returns a wrapped index error if `j` is out of range.
    pub fn class(&self, j: usize) -> Result<Vec<f32>> {
        self.matrix.col(j).map_err(HdcError::from)
    }

    /// Similarity scores of one encoded hypervector against every class.
    ///
    /// # Errors
    ///
    /// Returns a wrapped shape error if `encoded.len() != self.dim()`.
    pub fn scores(&self, encoded: &[f32], similarity: Similarity) -> Result<Vec<f32>> {
        let raw = gemm::matvec(encoded, &self.matrix).map_err(HdcError::from)?;
        match similarity {
            Similarity::Dot => Ok(raw),
            Similarity::Cosine => {
                let qn = ops::norm(encoded);
                if qn == 0.0 {
                    return Ok(vec![0.0; self.class_count()]);
                }
                let mut scores = raw;
                for (j, s) in scores.iter_mut().enumerate() {
                    let cn = ops::norm(&self.matrix.col(j).map_err(HdcError::from)?);
                    *s = if cn == 0.0 { 0.0 } else { *s / (qn * cn) };
                }
                Ok(scores)
            }
        }
    }
}

/// A complete HDC classifier: base hypervectors (encoder weights) plus
/// trained class hypervectors (classifier weights).
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HdcModel {
    encoder: NonlinearEncoder,
    classes: ClassHypervectors,
    similarity: Similarity,
}

impl HdcModel {
    /// Assembles a model from parts.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] if the encoder dimensionality
    /// and class-hypervector dimensionality disagree.
    pub fn from_parts(
        encoder: NonlinearEncoder,
        classes: ClassHypervectors,
        similarity: Similarity,
    ) -> Result<Self> {
        if encoder.base().dim() != classes.dim() {
            return Err(HdcError::InvalidConfig(
                "encoder dimensionality does not match class hypervectors",
            ));
        }
        Ok(HdcModel {
            encoder,
            classes,
            similarity,
        })
    }

    /// Trains a model end to end: generate base hypervectors, encode the
    /// training set once, then run the iterative class-hypervector update.
    ///
    /// # Errors
    ///
    /// * [`HdcError::EmptyDataset`] — no samples or `classes == 0`.
    /// * [`HdcError::LabelCount`] / [`HdcError::LabelOutOfRange`] — label
    ///   problems.
    /// * [`HdcError::InvalidConfig`] — bad dimension/iterations/rate.
    pub fn fit(
        features: &Matrix,
        labels: &[usize],
        classes: usize,
        config: &TrainConfig,
    ) -> Result<(Self, TrainStats)> {
        config.validate()?;
        if features.rows() == 0 || classes == 0 {
            return Err(HdcError::EmptyDataset);
        }
        let mut rng = DetRng::new(config.seed);
        let base = BaseHypervectors::generate(features.cols(), config.dim, &mut rng);
        let encoder = NonlinearEncoder::new(base);
        let encoded = encoder.encode(features)?;
        let (class_hvs, stats) = train_encoded(&encoded, labels, classes, config)?;
        Ok((
            HdcModel {
                encoder,
                classes: class_hvs,
                similarity: config.similarity,
            },
            stats,
        ))
    }

    /// The encoder (base hypervectors).
    pub fn encoder(&self) -> &NonlinearEncoder {
        &self.encoder
    }

    /// The trained class hypervectors.
    pub fn classes(&self) -> &ClassHypervectors {
        &self.classes
    }

    /// The similarity metric used for prediction.
    pub fn similarity(&self) -> Similarity {
        self.similarity
    }

    /// Hypervector dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.encoder.base().dim()
    }

    /// Number of input features `n`.
    pub fn feature_count(&self) -> usize {
        self.encoder.base().feature_count()
    }

    /// Number of classes `k`.
    pub fn class_count(&self) -> usize {
        self.classes.class_count()
    }

    /// Predicts class labels for a batch of raw samples.
    ///
    /// # Errors
    ///
    /// Returns a wrapped shape error on a feature-count mismatch.
    pub fn predict(&self, features: &Matrix) -> Result<Vec<usize>> {
        let encoded = self.encoder.encode(features)?;
        self.predict_encoded(&encoded)
    }

    /// Predicts class labels for already-encoded hypervectors — the path
    /// used when encoding ran on the accelerator.
    ///
    /// Dot-similarity scoring goes through [`crate::predict_batch`]'s
    /// dispatch, so a fully bipolar model (±1 classes scoring ±1
    /// queries) takes the packed XOR+popcount kernel bit-exactly.
    ///
    /// # Errors
    ///
    /// Returns a wrapped shape error on a dimensionality mismatch.
    pub fn predict_encoded(&self, encoded: &Matrix) -> Result<Vec<usize>> {
        match self.similarity {
            Similarity::Dot => crate::train::predict_rows(self.classes.as_matrix(), encoded),
            Similarity::Cosine => (0..encoded.rows())
                .map(|r| {
                    let scores = self.classes.scores(encoded.row(r), Similarity::Cosine)?;
                    ops::argmax(&scores).map_err(HdcError::from)
                })
                .collect(),
        }
    }

    /// Raw similarity scores (`samples x classes`) for a raw-sample batch.
    ///
    /// # Errors
    ///
    /// Returns a wrapped shape error on a feature-count mismatch.
    pub fn decision_scores(&self, features: &Matrix) -> Result<Matrix> {
        let encoded = self.encoder.encode(features)?;
        gemm::matmul(&encoded, self.classes.as_matrix()).map_err(HdcError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable_dataset() -> (Matrix, Vec<usize>) {
        // Three classes with distinct feature signatures plus mild noise.
        let mut rng = DetRng::new(99);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for class in 0..3usize {
            for _ in 0..20 {
                let mut row = vec![0.0f32; 6];
                row[class * 2] = 1.0 + 0.1 * rng.next_normal();
                row[class * 2 + 1] = 1.0 + 0.1 * rng.next_normal();
                rows.push(row);
                labels.push(class);
            }
        }
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        (Matrix::from_rows(&refs).unwrap(), labels)
    }

    #[test]
    fn fit_learns_separable_data() {
        let (features, labels) = separable_dataset();
        let config = TrainConfig::new(1024).with_iterations(10).with_seed(1);
        let (model, stats) = HdcModel::fit(&features, &labels, 3, &config).unwrap();
        assert_eq!(model.predict(&features).unwrap(), labels);
        assert!(stats.final_train_accuracy() > 0.95);
        assert_eq!(model.dim(), 1024);
        assert_eq!(model.feature_count(), 6);
        assert_eq!(model.class_count(), 3);
    }

    #[test]
    fn dot_and_cosine_agree_on_clear_cases() {
        let (features, labels) = separable_dataset();
        let config = TrainConfig::new(1024).with_iterations(10).with_seed(2);
        let (model, _) = HdcModel::fit(&features, &labels, 3, &config).unwrap();
        let cos_model = HdcModel::from_parts(
            model.encoder().clone(),
            model.classes().clone(),
            Similarity::Cosine,
        )
        .unwrap();
        assert_eq!(
            model.predict(&features).unwrap(),
            cos_model.predict(&features).unwrap()
        );
    }

    #[test]
    fn predict_encoded_matches_predict() {
        let (features, labels) = separable_dataset();
        let config = TrainConfig::new(512).with_iterations(5).with_seed(3);
        let (model, _) = HdcModel::fit(&features, &labels, 3, &config).unwrap();
        let encoded = model.encoder().encode(&features).unwrap();
        assert_eq!(
            model.predict(&features).unwrap(),
            model.predict_encoded(&encoded).unwrap()
        );
    }

    #[test]
    fn empty_dataset_rejected() {
        let config = TrainConfig::new(64);
        let err = HdcModel::fit(&Matrix::zeros(0, 4), &[], 2, &config).unwrap_err();
        assert_eq!(err, HdcError::EmptyDataset);
        let err = HdcModel::fit(&Matrix::zeros(2, 4), &[0, 0], 0, &config).unwrap_err();
        assert_eq!(err, HdcError::EmptyDataset);
    }

    #[test]
    fn mismatched_parts_rejected() {
        let mut rng = DetRng::new(4);
        let encoder = NonlinearEncoder::new(BaseHypervectors::generate(4, 128, &mut rng));
        let classes = ClassHypervectors::zeros(64, 2);
        assert!(matches!(
            HdcModel::from_parts(encoder, classes, Similarity::Dot).unwrap_err(),
            HdcError::InvalidConfig(_)
        ));
    }

    #[test]
    fn zero_class_hypervectors_score_zero() {
        let classes = ClassHypervectors::zeros(8, 3);
        let encoded = vec![1.0f32; 8];
        assert_eq!(
            classes.scores(&encoded, Similarity::Dot).unwrap(),
            vec![0.0; 3]
        );
        assert_eq!(
            classes.scores(&encoded, Similarity::Cosine).unwrap(),
            vec![0.0; 3]
        );
    }

    #[test]
    fn decision_scores_shape() {
        let (features, labels) = separable_dataset();
        let config = TrainConfig::new(256).with_iterations(3).with_seed(5);
        let (model, _) = HdcModel::fit(&features, &labels, 3, &config).unwrap();
        let scores = model.decision_scores(&features).unwrap();
        assert_eq!(scores.shape(), (features.rows(), 3));
    }

    #[test]
    fn class_accessor_bounds_checked() {
        let classes = ClassHypervectors::zeros(4, 2);
        assert!(classes.class(1).is_ok());
        assert!(classes.class(2).is_err());
    }

    #[test]
    fn fit_is_deterministic_per_seed() {
        let (features, labels) = separable_dataset();
        let config = TrainConfig::new(256).with_iterations(3).with_seed(42);
        let (a, _) = HdcModel::fit(&features, &labels, 3, &config).unwrap();
        let (b, _) = HdcModel::fit(&features, &labels, 3, &config).unwrap();
        assert_eq!(a, b);
    }
}
