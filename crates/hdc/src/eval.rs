//! Classification quality metrics.

use crate::error::HdcError;
use crate::Result;

/// Fraction of predictions matching the labels.
///
/// # Errors
///
/// Returns [`HdcError::LabelCount`] if the slices differ in length and
/// [`HdcError::EmptyDataset`] if both are empty.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), hdc::HdcError> {
/// let acc = hdc::eval::accuracy(&[0, 1, 1], &[0, 1, 0])?;
/// assert!((acc - 2.0 / 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> Result<f64> {
    if predictions.len() != labels.len() {
        return Err(HdcError::LabelCount {
            samples: predictions.len(),
            labels: labels.len(),
        });
    }
    if predictions.is_empty() {
        return Err(HdcError::EmptyDataset);
    }
    let correct = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    Ok(correct as f64 / predictions.len() as f64)
}

/// A `k x k` confusion matrix: `counts[actual][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Builds the matrix from prediction/label pairs over `classes`
    /// classes.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::LabelCount`] on length mismatch and
    /// [`HdcError::LabelOutOfRange`] for any value at or beyond `classes`.
    pub fn from_predictions(
        predictions: &[usize],
        labels: &[usize],
        classes: usize,
    ) -> Result<Self> {
        if predictions.len() != labels.len() {
            return Err(HdcError::LabelCount {
                samples: predictions.len(),
                labels: labels.len(),
            });
        }
        let mut counts = vec![vec![0usize; classes]; classes];
        for (&p, &l) in predictions.iter().zip(labels) {
            if p >= classes {
                return Err(HdcError::LabelOutOfRange { label: p, classes });
            }
            if l >= classes {
                return Err(HdcError::LabelOutOfRange { label: l, classes });
            }
            counts[l][p] += 1;
        }
        Ok(ConfusionMatrix { counts })
    }

    /// Count of samples with true class `actual` predicted as `predicted`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn count(&self, actual: usize, predicted: usize) -> usize {
        self.counts[actual][predicted]
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.counts.len()
    }

    /// Per-class recall: `diag / row-sum`, `None` for classes with no
    /// samples.
    pub fn recall(&self, class: usize) -> Option<f64> {
        let row = self.counts.get(class)?;
        let total: usize = row.iter().sum();
        if total == 0 {
            return None;
        }
        Some(row[class] as f64 / total as f64)
    }

    /// Overall accuracy implied by the matrix.
    pub fn accuracy(&self) -> f64 {
        let correct: usize = (0..self.counts.len()).map(|i| self.counts[i][i]).sum();
        let total: usize = self.counts.iter().flatten().sum();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 2, 3]).unwrap(), 1.0);
        assert_eq!(accuracy(&[0, 0], &[1, 1]).unwrap(), 0.0);
    }

    #[test]
    fn accuracy_validates() {
        assert!(accuracy(&[1], &[1, 2]).is_err());
        assert!(accuracy(&[], &[]).is_err());
    }

    #[test]
    fn confusion_counts() {
        let cm = ConfusionMatrix::from_predictions(&[0, 1, 1, 0], &[0, 1, 0, 0], 2).unwrap();
        assert_eq!(cm.count(0, 0), 2); // two true-0 predicted 0
        assert_eq!(cm.count(0, 1), 1); // one true-0 predicted 1
        assert_eq!(cm.count(1, 1), 1);
        assert_eq!(cm.count(1, 0), 0);
        assert_eq!(cm.class_count(), 2);
    }

    #[test]
    fn confusion_accuracy_matches_direct() {
        let preds = [0, 1, 2, 2, 1];
        let labels = [0, 1, 1, 2, 1];
        let cm = ConfusionMatrix::from_predictions(&preds, &labels, 3).unwrap();
        assert_eq!(cm.accuracy(), accuracy(&preds, &labels).unwrap());
    }

    #[test]
    fn recall_per_class() {
        let cm = ConfusionMatrix::from_predictions(&[0, 1, 1], &[0, 0, 1], 3).unwrap();
        assert_eq!(cm.recall(0), Some(0.5));
        assert_eq!(cm.recall(1), Some(1.0));
        assert_eq!(cm.recall(2), None); // no samples of class 2
    }

    #[test]
    fn confusion_validates_range() {
        assert!(ConfusionMatrix::from_predictions(&[3], &[0], 2).is_err());
        assert!(ConfusionMatrix::from_predictions(&[0], &[5], 2).is_err());
        assert!(ConfusionMatrix::from_predictions(&[0, 1], &[0], 2).is_err());
    }

    #[test]
    fn empty_confusion_accuracy_is_zero() {
        let cm = ConfusionMatrix::from_predictions(&[], &[], 2).unwrap();
        assert_eq!(cm.accuracy(), 0.0);
    }
}
