use serde::{Deserialize, Serialize};

use hd_tensor::packed::{PackedBipolar, PackedClassHypervectors};
use hd_tensor::{gemm, ops, Matrix};

use crate::error::HdcError;
use crate::model::{ClassHypervectors, Similarity};
use crate::Result;

/// Configuration of the iterative class-hypervector training.
///
/// Defaults mirror the paper's setup: `d = 10000`, 20 iterations for a
/// fully trained model, a learning rate of 1.0, dot-product similarity.
///
/// # Examples
///
/// ```
/// use hdc::TrainConfig;
///
/// let config = TrainConfig::new(10_000)
///     .with_iterations(20)
///     .with_learning_rate(1.0)
///     .with_seed(1234);
/// assert_eq!(config.dim, 10_000);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Hypervector dimensionality `d`.
    pub dim: usize,
    /// Number of passes over the training set.
    pub iterations: usize,
    /// The update coefficient `lambda`.
    pub learning_rate: f32,
    /// Seed for base-hypervector generation.
    pub seed: u64,
    /// Similarity metric for both training-time prediction and inference.
    pub similarity: Similarity,
    /// Early stopping: end training once the per-pass training accuracy
    /// has not improved for this many consecutive passes. `None` always
    /// runs the full iteration budget (the paper's fixed-20 schedule).
    pub patience: Option<usize>,
}

impl TrainConfig {
    /// Creates a configuration with paper-style defaults at the given
    /// dimensionality.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        TrainConfig {
            dim,
            iterations: 20,
            learning_rate: 1.0,
            seed: 0x5EED,
            similarity: Similarity::Dot,
            patience: None,
        }
    }

    /// Sets the number of training passes.
    #[must_use]
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Sets the learning rate `lambda`.
    #[must_use]
    pub fn with_learning_rate(mut self, rate: f32) -> Self {
        self.learning_rate = rate;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the similarity metric.
    #[must_use]
    pub fn with_similarity(mut self, similarity: Similarity) -> Self {
        self.similarity = similarity;
        self
    }

    /// Enables early stopping with the given patience (in passes).
    #[must_use]
    pub fn with_patience(mut self, patience: usize) -> Self {
        self.patience = Some(patience);
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] for a zero dimension, zero
    /// iterations, or a non-positive/non-finite learning rate.
    pub fn validate(&self) -> Result<()> {
        if self.dim == 0 {
            return Err(HdcError::InvalidConfig("dimension must be positive"));
        }
        if self.iterations == 0 {
            return Err(HdcError::InvalidConfig("iterations must be positive"));
        }
        if !self.learning_rate.is_finite() || self.learning_rate <= 0.0 {
            return Err(HdcError::InvalidConfig("learning rate must be positive"));
        }
        if self.patience == Some(0) {
            return Err(HdcError::InvalidConfig(
                "patience must be positive when set",
            ));
        }
        Ok(())
    }
}

/// Per-iteration training telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationStats {
    /// Zero-based iteration index.
    pub iteration: usize,
    /// Number of class-hypervector updates (misclassified samples).
    pub updates: usize,
    /// Training-set accuracy measured during the pass.
    pub train_accuracy: f64,
    /// Held-out accuracy after the pass, when a validation set was
    /// supplied (the paper's Fig. 4 tracks both curves).
    pub validation_accuracy: Option<f64>,
}

/// Full training telemetry: one entry per iteration.
///
/// The update counts feed the runtime models (each update is a bundling
/// plus a detaching sweep on the host CPU), and the accuracy series is
/// exactly what the paper plots in Fig. 4.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TrainStats {
    /// Telemetry for each completed pass.
    pub iterations: Vec<IterationStats>,
}

impl TrainStats {
    /// Training accuracy of the final pass (`0.0` if none ran).
    pub fn final_train_accuracy(&self) -> f64 {
        self.iterations.last().map_or(0.0, |s| s.train_accuracy)
    }

    /// Total number of class-hypervector updates across all passes.
    pub fn total_updates(&self) -> usize {
        self.iterations.iter().map(|s| s.updates).sum()
    }
}

fn validate_labels(samples: usize, labels: &[usize], classes: usize) -> Result<()> {
    if labels.len() != samples {
        return Err(HdcError::LabelCount {
            samples,
            labels: labels.len(),
        });
    }
    if let Some(&bad) = labels.iter().find(|&&l| l >= classes) {
        return Err(HdcError::LabelOutOfRange {
            label: bad,
            classes,
        });
    }
    Ok(())
}

/// Trains class hypervectors on an already-encoded training set.
///
/// This is the paper's host-CPU training stage, factored out so the
/// framework can feed it hypervectors encoded on the accelerator. Starting
/// from all-zero class hypervectors, each pass classifies every sample
/// with the current model and, on a miss, bundles the sample into its true
/// class and detaches it from the predicted class:
///
/// ```text
/// C_a += lambda * E    (bundling, a = true class)
/// C_b -= lambda * E    (detaching, b = predicted class)
/// ```
///
/// # Errors
///
/// * [`HdcError::EmptyDataset`] — no samples or `classes == 0`.
/// * [`HdcError::LabelCount`] / [`HdcError::LabelOutOfRange`] — label
///   problems.
/// * [`HdcError::InvalidConfig`] — invalid configuration.
pub fn train_encoded(
    encoded: &Matrix,
    labels: &[usize],
    classes: usize,
    config: &TrainConfig,
) -> Result<(ClassHypervectors, TrainStats)> {
    train_encoded_tracked(encoded, labels, classes, config, None)
}

/// [`train_encoded`] with optional per-iteration validation tracking.
///
/// When a `(encoded_validation, validation_labels)` pair is supplied,
/// each iteration's [`IterationStats::validation_accuracy`] records the
/// held-out accuracy of the model as of the end of that pass — the data
/// behind the paper's Fig. 4 convergence curves.
///
/// # Errors
///
/// Same as [`train_encoded`], plus label/shape validation of the
/// validation pair.
pub fn train_encoded_tracked(
    encoded: &Matrix,
    labels: &[usize],
    classes: usize,
    config: &TrainConfig,
    validation: Option<(&Matrix, &[usize])>,
) -> Result<(ClassHypervectors, TrainStats)> {
    let d = encoded.cols();
    train_encoded_warm(
        encoded,
        labels,
        ClassHypervectors::zeros(d, classes),
        config,
        validation,
    )
}

/// [`train_encoded_tracked`] starting from *existing* class hypervectors
/// instead of zeros — the warm-start primitive behind incremental
/// retraining and federated aggregation (a node refines the global model
/// on its local shard; see [`hyperedge`-level federated training]).
///
/// [`hyperedge`-level federated training]: https://docs.rs/hyperedge
///
/// # Errors
///
/// Same as [`train_encoded_tracked`], plus [`HdcError::InvalidConfig`] if
/// the initial class hypervectors' width differs from the encoded width.
pub fn train_encoded_warm(
    encoded: &Matrix,
    labels: &[usize],
    initial: ClassHypervectors,
    config: &TrainConfig,
    validation: Option<(&Matrix, &[usize])>,
) -> Result<(ClassHypervectors, TrainStats)> {
    config.validate()?;
    let classes = initial.class_count();
    if encoded.rows() == 0 || classes == 0 {
        return Err(HdcError::EmptyDataset);
    }
    if initial.dim() != encoded.cols() {
        return Err(HdcError::InvalidConfig(
            "initial class hypervector width differs from encoded width",
        ));
    }
    validate_labels(encoded.rows(), labels, classes)?;
    if let Some((val, val_labels)) = validation {
        validate_labels(val.rows(), val_labels, classes)?;
    }

    let mut class_hvs = initial;
    let mut stats = TrainStats::default();
    // Scratch: class scores per sample; class matrix is d x k so scoring a
    // sample is k dots of length d done via transpose-free row walks.
    let mut class_rows: Vec<Vec<f32>> = (0..classes)
        .map(|j| {
            class_hvs
                .class(j)
                .expect("class index in range by construction")
        })
        .collect();
    let mut best_accuracy = f64::MIN;
    let mut stale_passes = 0usize;

    for iteration in 0..config.iterations {
        let (updates, correct) = pass_over(&mut class_rows, encoded, labels, config.learning_rate)?;
        let validation_accuracy = match validation {
            Some((val, val_labels)) if !val_labels.is_empty() => {
                // Batched GEMM scoring: one matmul + row-argmax instead of
                // a per-sample dot loop.
                let predicted = predict_rows(&class_matrix(&class_rows), val)?;
                let val_correct = predicted
                    .iter()
                    .zip(val_labels)
                    .filter(|(p, l)| p == l)
                    .count();
                Some(val_correct as f64 / val_labels.len() as f64)
            }
            _ => None,
        };
        let train_accuracy = correct as f64 / labels.len() as f64;
        stats.iterations.push(IterationStats {
            iteration,
            updates,
            train_accuracy,
            validation_accuracy,
        });
        if let Some(patience) = config.patience {
            if train_accuracy > best_accuracy + 1e-12 {
                best_accuracy = train_accuracy;
                stale_passes = 0;
            } else {
                stale_passes += 1;
                if stale_passes >= patience {
                    break;
                }
            }
        }
    }

    // Materialize the d x k matrix from the row-major per-class scratch.
    let m = class_hvs.as_matrix_mut();
    for (j, row) in class_rows.iter().enumerate() {
        for (i, &v) in row.iter().enumerate() {
            m[(i, j)] = v;
        }
    }
    Ok((class_hvs, stats))
}

/// One perceptron pass of `labels` over `encoded`, mutating the per-class
/// scratch rows in sample order. Returns `(updates, correct)`. Factored
/// out so the streamed trainer applies *exactly* the sequential update
/// discipline to each arriving chunk.
fn pass_over(
    class_rows: &mut [Vec<f32>],
    encoded: &Matrix,
    labels: &[usize],
    learning_rate: f32,
) -> Result<(usize, usize)> {
    let mut updates = 0usize;
    let mut correct = 0usize;
    for (row, &label) in labels.iter().enumerate() {
        let sample = encoded.row(row);
        let predicted = predict_one(class_rows, sample)?;
        if predicted == label {
            correct += 1;
        } else {
            updates += 1;
            ops::axpy(learning_rate, sample, &mut class_rows[label]).map_err(HdcError::from)?;
            ops::axpy(-learning_rate, sample, &mut class_rows[predicted])
                .map_err(HdcError::from)?;
        }
    }
    Ok((updates, correct))
}

/// Materializes the row-major per-class scratch as the `d x k` class
/// matrix expected by the GEMM scoring path.
fn class_matrix(class_rows: &[Vec<f32>]) -> Matrix {
    let k = class_rows.len();
    let d = class_rows.first().map_or(0, Vec::len);
    let mut m = Matrix::zeros(d, k);
    for (j, row) in class_rows.iter().enumerate() {
        for (i, &v) in row.iter().enumerate() {
            m[(i, j)] = v;
        }
    }
    m
}

pub(crate) fn predict_rows(class_matrix: &Matrix, encoded: &Matrix) -> Result<Vec<usize>> {
    if let Some(preds) = predict_rows_packed(class_matrix, encoded) {
        return Ok(preds);
    }
    let scores = gemm::matmul(encoded, class_matrix).map_err(HdcError::from)?;
    (0..scores.rows())
        .map(|r| ops::argmax(scores.row(r)).map_err(HdcError::from))
        .collect()
}

/// `true` when every value is bitwise `+1.0` or `-1.0` — the probe that
/// gates the packed fast path. Early-exits on the first other value, so
/// the common float-model case pays one comparison.
fn all_pm_one(values: &[f32]) -> bool {
    const MAGNITUDE_ONE: u32 = 0x3F80_0000; // |±1.0f32| bit pattern
    values
        .iter()
        .all(|&v| v.to_bits() & 0x7FFF_FFFF == MAGNITUDE_ONE)
}

/// Exact packed fast path: when both the encoded queries and the class
/// matrix hold only ±1 values, scoring runs as packed XOR+popcount
/// Hamming scans instead of a float GEMM.
///
/// This is bit-exact with the GEMM path: bipolar dot scores are integers
/// in `[-d, d]`, represented exactly in `f32` for every supported `d`,
/// maximum dot is minimum Hamming, and both argmaxes take the lowest
/// index on ties. Returns `None` (fall back to the GEMM) for non-bipolar
/// data — and for shape mismatches, so the GEMM path owns error
/// reporting.
fn predict_rows_packed(class_matrix: &Matrix, encoded: &Matrix) -> Option<Vec<usize>> {
    let d = class_matrix.rows();
    let k = class_matrix.cols();
    if d == 0 || k == 0 || encoded.rows() == 0 || encoded.cols() != d {
        return None;
    }
    if !all_pm_one(encoded.as_slice()) || !all_pm_one(class_matrix.as_slice()) {
        return None;
    }
    let classes: Vec<PackedBipolar> = (0..k)
        .map(|j| Some(PackedBipolar::from_signs(&class_matrix.col(j).ok()?)))
        .collect::<Option<_>>()?;
    let packed = PackedClassHypervectors::from_classes(&classes).ok()?;
    let queries: Vec<PackedBipolar> = (0..encoded.rows())
        .map(|r| PackedBipolar::from_signs(encoded.row(r)))
        .collect();
    packed.predict_batch(&queries).ok()
}

/// Batched dot-similarity classification: one GEMM of the encoded samples
/// against the class matrix followed by a row-argmax — the vectorized
/// replacement for per-sample score loops.
///
/// When both operands are exactly ±1 (a binarized model scoring
/// binarized queries), the scores are computed by the packed
/// XOR+popcount kernel instead; the result is bit-exact either way, and
/// the dispatch is visible in [`hd_tensor::kernels::stats`].
///
/// # Errors
///
/// Returns a wrapped shape error if `encoded`'s width differs from the
/// class hypervector dimensionality.
pub fn predict_batch(classes: &ClassHypervectors, encoded: &Matrix) -> Result<Vec<usize>> {
    predict_rows(classes.as_matrix(), encoded)
}

/// [`train_encoded`] over a stream of encoded chunks instead of one
/// materialized matrix — the consumer half of the pipelined
/// encode→update schedule, where the accelerator hands over encoded
/// chunks while later chunks are still in flight.
///
/// The first training pass runs *incrementally*, chunk by chunk, in
/// arrival order; because the perceptron update for sample `i` depends
/// only on samples seen before `i`, the result is bit-exact with running
/// [`train_encoded`] on the concatenated chunks. The chunks are retained
/// to run the remaining passes (and the patience schedule) identically
/// to the sequential trainer. Chunk widths must agree; labels cover the
/// concatenated stream in order.
///
/// # Errors
///
/// Same as [`train_encoded`], plus any error carried by a chunk (e.g. a
/// device fault surfaced mid-stream), and [`HdcError::InvalidConfig`]
/// for mismatched chunk widths.
pub fn train_encoded_streamed<I>(
    chunks: I,
    labels: &[usize],
    classes: usize,
    config: &TrainConfig,
) -> Result<(ClassHypervectors, TrainStats)>
where
    I: IntoIterator<Item = Result<Matrix>>,
{
    config.validate()?;
    if classes == 0 {
        return Err(HdcError::EmptyDataset);
    }
    if let Some(&bad) = labels.iter().find(|&&l| l >= classes) {
        return Err(HdcError::LabelOutOfRange {
            label: bad,
            classes,
        });
    }

    let mut class_rows: Vec<Vec<f32>> = Vec::new();
    let mut d = 0usize;
    let mut seen = 0usize;
    let mut pass0_updates = 0usize;
    let mut pass0_correct = 0usize;
    let mut data: Vec<f32> = Vec::new();
    for chunk in chunks {
        let chunk = chunk?;
        if chunk.rows() == 0 {
            continue;
        }
        if class_rows.is_empty() {
            d = chunk.cols();
            class_rows = vec![vec![0.0; d]; classes];
        } else if chunk.cols() != d {
            return Err(HdcError::InvalidConfig(
                "streamed chunk width differs from the first chunk",
            ));
        }
        let end = seen + chunk.rows();
        if end > labels.len() {
            return Err(HdcError::LabelCount {
                samples: end,
                labels: labels.len(),
            });
        }
        let (u, c) = pass_over(
            &mut class_rows,
            &chunk,
            &labels[seen..end],
            config.learning_rate,
        )?;
        pass0_updates += u;
        pass0_correct += c;
        seen = end;
        data.extend_from_slice(chunk.as_slice());
    }
    if seen == 0 {
        return Err(HdcError::EmptyDataset);
    }
    if seen != labels.len() {
        return Err(HdcError::LabelCount {
            samples: seen,
            labels: labels.len(),
        });
    }
    let encoded = Matrix::from_vec(seen, d, data).map_err(HdcError::from)?;

    let mut stats = TrainStats::default();
    let pass0_accuracy = pass0_correct as f64 / labels.len() as f64;
    stats.iterations.push(IterationStats {
        iteration: 0,
        updates: pass0_updates,
        train_accuracy: pass0_accuracy,
        validation_accuracy: None,
    });
    // Pass 0 always improves on the f64::MIN sentinel, so the sequential
    // trainer's patience state after its first pass is exactly this.
    let mut best_accuracy = pass0_accuracy;
    let mut stale_passes = 0usize;
    for iteration in 1..config.iterations {
        let (updates, correct) =
            pass_over(&mut class_rows, &encoded, labels, config.learning_rate)?;
        let train_accuracy = correct as f64 / labels.len() as f64;
        stats.iterations.push(IterationStats {
            iteration,
            updates,
            train_accuracy,
            validation_accuracy: None,
        });
        if let Some(patience) = config.patience {
            if train_accuracy > best_accuracy + 1e-12 {
                best_accuracy = train_accuracy;
                stale_passes = 0;
            } else {
                stale_passes += 1;
                if stale_passes >= patience {
                    break;
                }
            }
        }
    }

    let mut class_hvs = ClassHypervectors::zeros(d, classes);
    let m = class_hvs.as_matrix_mut();
    for (j, row) in class_rows.iter().enumerate() {
        for (i, &v) in row.iter().enumerate() {
            m[(i, j)] = v;
        }
    }
    Ok((class_hvs, stats))
}

fn predict_one(class_rows: &[Vec<f32>], sample: &[f32]) -> Result<usize> {
    let mut best = 0usize;
    let mut best_score = f32::NEG_INFINITY;
    for (j, class) in class_rows.iter().enumerate() {
        let score = ops::dot(sample, class).map_err(HdcError::from)?;
        if score > best_score {
            best_score = score;
            best = j;
        }
    }
    Ok(best)
}

/// Single-pass online trainer: bundles every sample into its class on
/// first sight and applies the mispredict correction immediately.
///
/// This is the "OnlineHD"-style variant referenced by the paper's related
/// work — one pass, no stored encodings, suited to streaming edge data.
/// It usually reaches slightly lower accuracy than the iterative trainer
/// but costs a single pass.
///
/// # Examples
///
/// ```
/// use hd_tensor::Matrix;
/// use hdc::OnlineTrainer;
///
/// # fn main() -> Result<(), hdc::HdcError> {
/// let mut trainer = OnlineTrainer::new(64, 2, 1.0)?;
/// trainer.observe(&[1.0; 64], 0)?;
/// trainer.observe(&[-1.0; 64], 1)?;
/// let classes = trainer.finish();
/// assert_eq!(classes.class_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct OnlineTrainer {
    class_rows: Vec<Vec<f32>>,
    learning_rate: f32,
    seen: usize,
}

impl OnlineTrainer {
    /// Creates a trainer for width-`d` hypervectors and `classes` classes.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] for zero dimensions/classes or
    /// a non-positive learning rate.
    pub fn new(d: usize, classes: usize, learning_rate: f32) -> Result<Self> {
        if d == 0 || classes == 0 {
            return Err(HdcError::InvalidConfig(
                "dimension and classes must be positive",
            ));
        }
        if !learning_rate.is_finite() || learning_rate <= 0.0 {
            return Err(HdcError::InvalidConfig("learning rate must be positive"));
        }
        Ok(OnlineTrainer {
            class_rows: vec![vec![0.0; d]; classes],
            learning_rate,
            seen: 0,
        })
    }

    /// Number of samples observed so far.
    pub fn seen(&self) -> usize {
        self.seen
    }

    /// Feeds one encoded sample with its label.
    ///
    /// # Errors
    ///
    /// * [`HdcError::LabelOutOfRange`] — label beyond the class count.
    /// * Wrapped shape error — encoded width mismatch.
    pub fn observe(&mut self, encoded: &[f32], label: usize) -> Result<()> {
        if label >= self.class_rows.len() {
            return Err(HdcError::LabelOutOfRange {
                label,
                classes: self.class_rows.len(),
            });
        }
        let predicted = predict_one(&self.class_rows, encoded)?;
        if predicted != label {
            ops::axpy(self.learning_rate, encoded, &mut self.class_rows[label])
                .map_err(HdcError::from)?;
            ops::axpy(
                -self.learning_rate,
                encoded,
                &mut self.class_rows[predicted],
            )
            .map_err(HdcError::from)?;
        } else {
            // Reinforce correct predictions gently so the first pass still
            // accumulates class mass (pure perceptron updates would leave
            // never-missed classes at zero).
            ops::axpy(
                self.learning_rate * 0.1,
                encoded,
                &mut self.class_rows[label],
            )
            .map_err(HdcError::from)?;
        }
        self.seen += 1;
        Ok(())
    }

    /// Finalizes into class hypervectors.
    pub fn finish(self) -> ClassHypervectors {
        let d = self.class_rows.first().map_or(0, Vec::len);
        let k = self.class_rows.len();
        let mut m = Matrix::zeros(d, k);
        for (j, row) in self.class_rows.iter().enumerate() {
            for (i, &v) in row.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        ClassHypervectors::from_matrix(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_tensor::rng::DetRng;

    fn encoded_clusters(
        samples_per_class: usize,
        d: usize,
        classes: usize,
    ) -> (Matrix, Vec<usize>) {
        // Clusters around random unit directions in hypervector space.
        let mut rng = DetRng::new(7);
        let centers: Vec<Vec<f32>> = (0..classes)
            .map(|_| (0..d).map(|_| rng.next_normal()).collect())
            .collect();
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for (c, center) in centers.iter().enumerate() {
            for _ in 0..samples_per_class {
                let row: Vec<f32> = center
                    .iter()
                    .map(|&v| v + 0.3 * rng.next_normal())
                    .collect();
                rows.push(row);
                labels.push(c);
            }
        }
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        (Matrix::from_rows(&refs).unwrap(), labels)
    }

    #[test]
    fn training_reaches_high_accuracy_on_clusters() {
        let (encoded, labels) = encoded_clusters(30, 128, 4);
        let config = TrainConfig::new(128).with_iterations(10);
        let (_, stats) = train_encoded(&encoded, &labels, 4, &config).unwrap();
        assert!(stats.final_train_accuracy() > 0.95, "{stats:?}");
    }

    #[test]
    fn accuracy_is_monotonic_ish_over_iterations() {
        let (encoded, labels) = encoded_clusters(30, 128, 4);
        let config = TrainConfig::new(128).with_iterations(8);
        let (_, stats) = train_encoded(&encoded, &labels, 4, &config).unwrap();
        let first = stats.iterations.first().unwrap().train_accuracy;
        let last = stats.final_train_accuracy();
        assert!(last >= first, "accuracy regressed from {first} to {last}");
    }

    #[test]
    fn updates_decrease_as_model_converges() {
        let (encoded, labels) = encoded_clusters(30, 256, 3);
        let config = TrainConfig::new(256).with_iterations(10);
        let (_, stats) = train_encoded(&encoded, &labels, 3, &config).unwrap();
        let first = stats.iterations.first().unwrap().updates;
        let last = stats.iterations.last().unwrap().updates;
        assert!(last <= first);
    }

    #[test]
    fn label_validation() {
        let encoded = Matrix::zeros(3, 8);
        let config = TrainConfig::new(8).with_iterations(1);
        assert_eq!(
            train_encoded(&encoded, &[0, 1], 2, &config).unwrap_err(),
            HdcError::LabelCount {
                samples: 3,
                labels: 2
            }
        );
        assert_eq!(
            train_encoded(&encoded, &[0, 1, 2], 2, &config).unwrap_err(),
            HdcError::LabelOutOfRange {
                label: 2,
                classes: 2
            }
        );
    }

    #[test]
    fn config_validation() {
        assert!(TrainConfig::new(0).validate().is_err());
        assert!(TrainConfig::new(8).with_iterations(0).validate().is_err());
        assert!(TrainConfig::new(8)
            .with_learning_rate(0.0)
            .validate()
            .is_err());
        assert!(TrainConfig::new(8)
            .with_learning_rate(f32::NAN)
            .validate()
            .is_err());
        assert!(TrainConfig::new(8).validate().is_ok());
    }

    #[test]
    fn empty_dataset_rejected() {
        let config = TrainConfig::new(8);
        assert_eq!(
            train_encoded(&Matrix::zeros(0, 8), &[], 2, &config).unwrap_err(),
            HdcError::EmptyDataset
        );
    }

    #[test]
    fn total_updates_sums_iterations() {
        let (encoded, labels) = encoded_clusters(10, 64, 2);
        let config = TrainConfig::new(64).with_iterations(3);
        let (_, stats) = train_encoded(&encoded, &labels, 2, &config).unwrap();
        let sum: usize = stats.iterations.iter().map(|i| i.updates).sum();
        assert_eq!(stats.total_updates(), sum);
    }

    #[test]
    fn online_trainer_learns_clusters() {
        let (encoded, labels) = encoded_clusters(40, 128, 3);
        let mut trainer = OnlineTrainer::new(128, 3, 1.0).unwrap();
        for (row, &label) in labels.iter().enumerate() {
            trainer.observe(encoded.row(row), label).unwrap();
        }
        assert_eq!(trainer.seen(), labels.len());
        let classes = trainer.finish();
        // Score each sample and count correct predictions.
        let mut correct = 0;
        for (row, &label) in labels.iter().enumerate() {
            let scores = classes.scores(encoded.row(row), Similarity::Dot).unwrap();
            if ops::argmax(&scores).unwrap() == label {
                correct += 1;
            }
        }
        assert!(
            correct as f64 / labels.len() as f64 > 0.9,
            "online accuracy {correct}/{}",
            labels.len()
        );
    }

    #[test]
    fn online_trainer_validates() {
        assert!(OnlineTrainer::new(0, 2, 1.0).is_err());
        assert!(OnlineTrainer::new(8, 0, 1.0).is_err());
        assert!(OnlineTrainer::new(8, 2, -1.0).is_err());
        let mut t = OnlineTrainer::new(8, 2, 1.0).unwrap();
        assert!(matches!(
            t.observe(&[0.0; 8], 5).unwrap_err(),
            HdcError::LabelOutOfRange { .. }
        ));
    }

    #[test]
    fn warm_start_from_zeros_matches_cold_start() {
        let (encoded, labels) = encoded_clusters(20, 64, 3);
        let config = TrainConfig::new(64).with_iterations(4);
        let (cold, _) = train_encoded(&encoded, &labels, 3, &config).unwrap();
        let (warm, _) = train_encoded_warm(
            &encoded,
            &labels,
            ClassHypervectors::zeros(64, 3),
            &config,
            None,
        )
        .unwrap();
        assert_eq!(cold.as_matrix(), warm.as_matrix());
    }

    #[test]
    fn warm_start_converges_faster_than_cold() {
        let (encoded, labels) = encoded_clusters(30, 128, 4);
        let config = TrainConfig::new(128).with_iterations(3);
        let (trained, _) = train_encoded(&encoded, &labels, 4, &config).unwrap();
        // Resuming from a trained model: first-pass updates are fewer
        // than a cold start's first pass.
        let one_pass = TrainConfig::new(128).with_iterations(1);
        let (_, cold_stats) = train_encoded(&encoded, &labels, 4, &one_pass).unwrap();
        let (_, warm_stats) =
            train_encoded_warm(&encoded, &labels, trained, &one_pass, None).unwrap();
        assert!(
            warm_stats.iterations[0].updates <= cold_stats.iterations[0].updates,
            "warm {} vs cold {}",
            warm_stats.iterations[0].updates,
            cold_stats.iterations[0].updates
        );
    }

    #[test]
    fn warm_start_validates_width() {
        let (encoded, labels) = encoded_clusters(5, 32, 2);
        let config = TrainConfig::new(32).with_iterations(1);
        let err = train_encoded_warm(
            &encoded,
            &labels,
            ClassHypervectors::zeros(16, 2),
            &config,
            None,
        )
        .unwrap_err();
        assert!(matches!(err, HdcError::InvalidConfig(_)));
    }

    #[test]
    fn early_stopping_ends_before_budget_on_converged_data() {
        let (encoded, labels) = encoded_clusters(30, 256, 3);
        let config = TrainConfig::new(256).with_iterations(50).with_patience(2);
        let (_, stats) = train_encoded(&encoded, &labels, 3, &config).unwrap();
        assert!(
            stats.iterations.len() < 50,
            "early stopping never fired: {} passes",
            stats.iterations.len()
        );
        // The result is still a converged model.
        assert!(stats.final_train_accuracy() > 0.95);
    }

    #[test]
    fn without_patience_full_budget_runs() {
        let (encoded, labels) = encoded_clusters(10, 64, 2);
        let config = TrainConfig::new(64).with_iterations(7);
        let (_, stats) = train_encoded(&encoded, &labels, 2, &config).unwrap();
        assert_eq!(stats.iterations.len(), 7);
    }

    #[test]
    fn zero_patience_rejected() {
        let mut config = TrainConfig::new(64);
        config.patience = Some(0);
        assert!(config.validate().is_err());
        assert!(TrainConfig::new(64).with_patience(1).validate().is_ok());
    }

    fn chunked<'a>(encoded: &'a Matrix, chunk: usize) -> impl Iterator<Item = Result<Matrix>> + 'a {
        (0..encoded.rows()).step_by(chunk).map(move |s| {
            let e = (s + chunk).min(encoded.rows());
            encoded.slice_rows(s, e).map_err(HdcError::from)
        })
    }

    #[test]
    fn streamed_training_matches_sequential_bit_exact() {
        let (encoded, labels) = encoded_clusters(20, 64, 3);
        for chunk in [1, 7, 16, 60, 100] {
            let config = TrainConfig::new(64).with_iterations(4);
            let (seq, seq_stats) = train_encoded(&encoded, &labels, 3, &config).unwrap();
            let (streamed, streamed_stats) =
                train_encoded_streamed(chunked(&encoded, chunk), &labels, 3, &config).unwrap();
            assert_eq!(seq.as_matrix(), streamed.as_matrix(), "chunk {chunk}");
            assert_eq!(seq_stats, streamed_stats, "chunk {chunk}");
        }
    }

    #[test]
    fn streamed_training_matches_under_patience() {
        let (encoded, labels) = encoded_clusters(30, 256, 3);
        let config = TrainConfig::new(256).with_iterations(50).with_patience(2);
        let (seq, seq_stats) = train_encoded(&encoded, &labels, 3, &config).unwrap();
        let (streamed, streamed_stats) =
            train_encoded_streamed(chunked(&encoded, 13), &labels, 3, &config).unwrap();
        assert_eq!(seq.as_matrix(), streamed.as_matrix());
        assert_eq!(seq_stats, streamed_stats);
    }

    #[test]
    fn streamed_training_validates_the_stream() {
        let (encoded, labels) = encoded_clusters(5, 32, 2);
        let config = TrainConfig::new(32).with_iterations(1);
        // Too few labels for the stream.
        let err =
            train_encoded_streamed(chunked(&encoded, 4), &labels[..4], 2, &config).unwrap_err();
        assert!(matches!(err, HdcError::LabelCount { .. }));
        // Too many labels.
        let mut long = labels.clone();
        long.push(0);
        let err = train_encoded_streamed(chunked(&encoded, 4), &long, 2, &config).unwrap_err();
        assert!(matches!(err, HdcError::LabelCount { .. }));
        // A faulted chunk propagates.
        let err = train_encoded_streamed(
            vec![
                Ok(encoded.slice_rows(0, 4).unwrap()),
                Err(HdcError::Backend("device died".into())),
            ],
            &labels,
            2,
            &config,
        )
        .unwrap_err();
        assert!(matches!(err, HdcError::Backend(_)));
        // Empty stream.
        let err = train_encoded_streamed(std::iter::empty(), &[], 2, &config).unwrap_err();
        assert_eq!(err, HdcError::EmptyDataset);
    }

    #[test]
    fn predict_batch_matches_per_sample_argmax() {
        let (encoded, labels) = encoded_clusters(20, 64, 3);
        let config = TrainConfig::new(64).with_iterations(5);
        let (classes, _) = train_encoded(&encoded, &labels, 3, &config).unwrap();
        let batch = predict_batch(&classes, &encoded).unwrap();
        for (row, &p) in batch.iter().enumerate() {
            let scores = classes.scores(encoded.row(row), Similarity::Dot).unwrap();
            assert_eq!(p, ops::argmax(&scores).unwrap());
        }
    }

    #[test]
    fn gemm_validation_scoring_tracks_heldout_accuracy() {
        let (encoded, labels) = encoded_clusters(30, 128, 4);
        let (val, val_labels) = encoded_clusters(10, 128, 4);
        let config = TrainConfig::new(128).with_iterations(5);
        let (_, stats) =
            train_encoded_tracked(&encoded, &labels, 4, &config, Some((&val, &val_labels)))
                .unwrap();
        let last = stats.iterations.last().unwrap();
        assert!(last.validation_accuracy.unwrap() > 0.9, "{stats:?}");
    }

    #[test]
    fn learning_rate_scales_updates() {
        let (encoded, labels) = encoded_clusters(5, 32, 2);
        let c1 = TrainConfig::new(32)
            .with_iterations(1)
            .with_learning_rate(1.0);
        let c2 = TrainConfig::new(32)
            .with_iterations(1)
            .with_learning_rate(2.0);
        let (m1, _) = train_encoded(&encoded, &labels, 2, &c1).unwrap();
        let (m2, _) = train_encoded(&encoded, &labels, 2, &c2).unwrap();
        // With double the rate, the first-pass updates are exactly doubled.
        let a = m1.as_matrix();
        let b = m2.as_matrix();
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((2.0 * x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }
}
