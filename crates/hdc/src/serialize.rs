//! Binary persistence for trained HDC models.
//!
//! An edge deployment trains once (or occasionally) and predicts for a
//! long time; the paper's framework keeps the trained base and class
//! hypervectors around to regenerate accelerator models on demand. This
//! module provides the compact `.hdm` container for that artifact.
//!
//! Layout (little-endian):
//!
//! ```text
//! HDM1 | u32 version | u32 features | u32 dim | u32 classes
//!      | u8 similarity (0 dot, 1 cosine)
//!      | f32 x (features * dim)   base hypervectors, row-major
//!      | f32 x (dim * classes)    class hypervectors, row-major
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

use hd_tensor::Matrix;

use crate::encoder::{BaseHypervectors, NonlinearEncoder};
use crate::error::HdcError;
use crate::model::{ClassHypervectors, HdcModel, Similarity};
use crate::Result;

const MAGIC: &[u8; 4] = b"HDM1";
const VERSION: u32 = 1;

/// Serializes a trained model to its binary container.
///
/// # Examples
///
/// ```
/// use hd_tensor::Matrix;
/// use hdc::{serialize, HdcModel, TrainConfig};
///
/// # fn main() -> Result<(), hdc::HdcError> {
/// let features = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]])?;
/// let (model, _) = HdcModel::fit(&features, &[0, 1], 2, &TrainConfig::new(64))?;
/// let blob = serialize::write_model(&model);
/// let restored = serialize::read_model(&blob)?;
/// assert_eq!(restored, model);
/// # Ok(())
/// # }
/// ```
pub fn write_model(model: &HdcModel) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(model.feature_count() as u32);
    buf.put_u32_le(model.dim() as u32);
    buf.put_u32_le(model.class_count() as u32);
    buf.put_u8(match model.similarity() {
        Similarity::Dot => 0,
        Similarity::Cosine => 1,
    });
    for &v in model.encoder().base().as_matrix().iter() {
        buf.put_f32_le(v);
    }
    for &v in model.classes().as_matrix().iter() {
        buf.put_f32_le(v);
    }
    buf.freeze()
}

fn need(buf: &impl Buf, bytes: usize, what: &str) -> Result<()> {
    if buf.remaining() < bytes {
        return Err(HdcError::InvalidConfig(
            // A 'static str is required by the error type; the caller's
            // context string is folded into a stable message per section.
            match what {
                "header" => "truncated model container: header",
                "base" => "truncated model container: base hypervectors",
                "classes" => "truncated model container: class hypervectors",
                _ => "truncated model container",
            },
        ));
    }
    Ok(())
}

/// Deserializes a model written by [`write_model`].
///
/// # Errors
///
/// Returns [`HdcError::InvalidConfig`] on bad magic, version, similarity
/// tag, or truncation.
pub fn read_model(data: &[u8]) -> Result<HdcModel> {
    let mut buf = data;
    need(&buf, 4 + 4 + 4 + 4 + 4 + 1, "header")?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(HdcError::InvalidConfig("bad model container magic"));
    }
    if buf.get_u32_le() != VERSION {
        return Err(HdcError::InvalidConfig(
            "unsupported model container version",
        ));
    }
    let features = buf.get_u32_le() as usize;
    let dim = buf.get_u32_le() as usize;
    let classes = buf.get_u32_le() as usize;
    let similarity = match buf.get_u8() {
        0 => Similarity::Dot,
        1 => Similarity::Cosine,
        _ => return Err(HdcError::InvalidConfig("unknown similarity tag")),
    };

    let base_len = features
        .checked_mul(dim)
        .and_then(|n| n.checked_mul(4))
        .ok_or(HdcError::InvalidConfig("base dimensions overflow"))?;
    need(&buf, base_len, "base")?;
    let mut base = Vec::with_capacity(features * dim);
    for _ in 0..features * dim {
        base.push(buf.get_f32_le());
    }
    let class_len = dim
        .checked_mul(classes)
        .and_then(|n| n.checked_mul(4))
        .ok_or(HdcError::InvalidConfig("class dimensions overflow"))?;
    need(&buf, class_len, "classes")?;
    let mut class_data = Vec::with_capacity(dim * classes);
    for _ in 0..dim * classes {
        class_data.push(buf.get_f32_le());
    }

    let encoder = NonlinearEncoder::new(BaseHypervectors::from_matrix(Matrix::from_vec(
        features, dim, base,
    )?));
    let class_hvs = ClassHypervectors::from_matrix(Matrix::from_vec(dim, classes, class_data)?);
    HdcModel::from_parts(encoder, class_hvs, similarity)
}

/// Writes a model to a file.
///
/// # Errors
///
/// Returns any I/O error from the filesystem.
pub fn save_model(model: &HdcModel, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
    std::fs::write(path, write_model(model))
}

/// Reads a model from a file.
///
/// # Errors
///
/// Returns I/O errors as `io::Error` and container errors as
/// `io::ErrorKind::InvalidData`.
pub fn load_model(path: impl AsRef<std::path::Path>) -> std::io::Result<HdcModel> {
    let data = std::fs::read(path)?;
    read_model(&data).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::TrainConfig;
    use hd_tensor::rng::DetRng;

    fn trained(similarity: Similarity) -> HdcModel {
        let mut rng = DetRng::new(51);
        let mut features = Matrix::random_normal(30, 8, &mut rng);
        let labels: Vec<usize> = (0..30).map(|i| i % 3).collect();
        for (i, &l) in labels.iter().enumerate() {
            features.row_mut(i)[l] += 2.0;
        }
        let config = TrainConfig::new(128)
            .with_iterations(4)
            .with_similarity(similarity);
        HdcModel::fit(&features, &labels, 3, &config).unwrap().0
    }

    #[test]
    fn roundtrip_is_exact_for_both_similarities() {
        for sim in [Similarity::Dot, Similarity::Cosine] {
            let model = trained(sim);
            let restored = read_model(&write_model(&model)).unwrap();
            assert_eq!(restored, model);
            assert_eq!(restored.similarity(), sim);
        }
    }

    #[test]
    fn roundtrip_preserves_predictions() {
        let model = trained(Similarity::Dot);
        let mut rng = DetRng::new(52);
        let probe = Matrix::random_normal(10, 8, &mut rng);
        let restored = read_model(&write_model(&model)).unwrap();
        assert_eq!(
            model.predict(&probe).unwrap(),
            restored.predict(&probe).unwrap()
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let model = trained(Similarity::Dot);
        let mut blob = write_model(&model).to_vec();
        blob[0] = b'Z';
        assert!(read_model(&blob).is_err());
    }

    #[test]
    fn bad_version_rejected() {
        let model = trained(Similarity::Dot);
        let mut blob = write_model(&model).to_vec();
        blob[4] = 77;
        assert!(read_model(&blob).is_err());
    }

    #[test]
    fn bad_similarity_tag_rejected() {
        let model = trained(Similarity::Dot);
        let mut blob = write_model(&model).to_vec();
        blob[20] = 9; // similarity byte (after 4+4+4+4+4)
        assert!(read_model(&blob).is_err());
    }

    #[test]
    fn truncation_rejected_at_every_section() {
        let model = trained(Similarity::Dot);
        let blob = write_model(&model);
        for len in [0usize, 10, 21, 100, blob.len() - 1] {
            assert!(read_model(&blob[..len]).is_err(), "prefix {len} parsed");
        }
    }

    #[test]
    fn file_roundtrip() {
        let model = trained(Similarity::Dot);
        let dir = std::env::temp_dir().join("hyperedge-hdm-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.hdm");
        save_model(&model, &path).unwrap();
        let restored = load_model(&path).unwrap();
        assert_eq!(restored, model);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_model_surfaces_invalid_data() {
        let dir = std::env::temp_dir().join("hyperedge-hdm-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.hdm");
        std::fs::write(&path, b"not a model").unwrap();
        let err = load_model(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }
}
