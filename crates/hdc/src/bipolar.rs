//! Bipolar (1-bit) hypervectors: the classic Kanerva-style HDC
//! representation used by the FPGA and in-memory accelerators in the
//! paper's related work.
//!
//! A trained real-valued model binarizes to signs: each hypervector
//! component becomes `+1` or `-1`, packed 64 components per machine word,
//! and the dot-product similarity becomes a Hamming distance
//! (`dot(sign(a), sign(b)) = d - 2 * hamming(a, b)`), computable with XOR
//! and popcount. This cuts model storage 32x and turns the associative
//! search into pure bit arithmetic — the trade the paper's "lightweight
//! edge" motivation points at, at a small accuracy cost that
//! [`BipolarModel`] lets a user measure directly.

use serde::{Deserialize, Serialize};

use hd_tensor::Matrix;

use crate::encoder::Encoder;
use crate::error::HdcError;
use crate::model::{ClassHypervectors, HdcModel};
use crate::Result;

/// A packed vector of `+1`/`-1` components (bit set = `+1`).
///
/// # Examples
///
/// ```
/// use hdc::bipolar::BipolarVector;
///
/// let a = BipolarVector::from_signs(&[1.0, -2.0, 0.5]);
/// let b = BipolarVector::from_signs(&[1.0, 2.0, 0.5]);
/// assert_eq!(a.hamming_distance(&b), Some(1));
/// assert_eq!(a.dot(&b), Some(1)); // 3 - 2*1
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BipolarVector {
    words: Vec<u64>,
    dim: usize,
}

impl BipolarVector {
    /// Packs the signs of a real vector (`v >= 0` maps to `+1`).
    #[must_use]
    pub fn from_signs(values: &[f32]) -> Self {
        let dim = values.len();
        let mut words = vec![0u64; dim.div_ceil(64)];
        for (i, &v) in values.iter().enumerate() {
            if v >= 0.0 {
                words[i / 64] |= 1u64 << (i % 64);
            }
        }
        BipolarVector { words, dim }
    }

    /// Number of components.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Unpacks back to `+1.0` / `-1.0` values.
    pub fn to_signs(&self) -> Vec<f32> {
        (0..self.dim)
            .map(|i| {
                if self.words[i / 64] >> (i % 64) & 1 == 1 {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect()
    }

    /// Component `i` as `+1` / `-1`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.dim()`.
    pub fn sign(&self, i: usize) -> i8 {
        assert!(i < self.dim, "index {i} out of bounds ({})", self.dim);
        if self.words[i / 64] >> (i % 64) & 1 == 1 {
            1
        } else {
            -1
        }
    }

    /// Hamming distance (number of differing components), or `None` when
    /// dimensionalities differ.
    pub fn hamming_distance(&self, other: &BipolarVector) -> Option<u32> {
        if self.dim != other.dim {
            return None;
        }
        let mut distance = 0u32;
        for (i, (a, b)) in self.words.iter().zip(&other.words).enumerate() {
            let mut diff = a ^ b;
            // Mask out padding bits in the last word.
            if i == self.words.len() - 1 && !self.dim.is_multiple_of(64) {
                diff &= (1u64 << (self.dim % 64)) - 1;
            }
            distance += diff.count_ones();
        }
        Some(distance)
    }

    /// Bipolar dot product `sum_i a_i b_i = d - 2 * hamming`, or `None`
    /// when dimensionalities differ.
    pub fn dot(&self, other: &BipolarVector) -> Option<i64> {
        let h = self.hamming_distance(other)? as i64;
        Some(self.dim as i64 - 2 * h)
    }

    /// Storage bytes of the packed form.
    pub fn byte_size(&self) -> usize {
        self.words.len() * 8
    }
}

/// A binarized HDC classifier: the float encoder is kept (encoding must
/// stay informative), but the *query* hypervector and the class
/// hypervectors reduce to signs, so the associative search runs on packed
/// bits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BipolarModel {
    encoder: crate::encoder::NonlinearEncoder,
    classes: Vec<BipolarVector>,
}

impl BipolarModel {
    /// Binarizes a trained real-valued model.
    #[must_use]
    pub fn binarize(model: &HdcModel) -> Self {
        BipolarModel {
            encoder: model.encoder().clone(),
            classes: binarize_classes(model.classes()),
        }
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Hypervector dimensionality.
    pub fn dim(&self) -> usize {
        self.classes.first().map_or(0, BipolarVector::dim)
    }

    /// Packed class-model storage in bytes (vs `4 * d * k` for f32).
    pub fn class_bytes(&self) -> usize {
        self.classes.iter().map(BipolarVector::byte_size).sum()
    }

    /// Predicts labels for a batch of raw samples: encode in f32,
    /// binarize the query, pick the class at minimum Hamming distance.
    ///
    /// # Errors
    ///
    /// Returns a wrapped shape error on a feature-count mismatch.
    pub fn predict(&self, features: &Matrix) -> Result<Vec<usize>> {
        let encoded = self.encoder.encode(features)?;
        (0..encoded.rows())
            .map(|r| {
                let query = BipolarVector::from_signs(encoded.row(r));
                let mut best = 0usize;
                let mut best_distance = u32::MAX;
                for (j, class) in self.classes.iter().enumerate() {
                    let d = class
                        .hamming_distance(&query)
                        .ok_or(HdcError::InvalidConfig(
                            "class/query dimensionality mismatch",
                        ))?;
                    if d < best_distance {
                        best_distance = d;
                        best = j;
                    }
                }
                Ok(best)
            })
            .collect()
    }
}

/// Binarizes class hypervectors column-wise (one packed vector per class).
///
/// # Panics
///
/// Panics only if an internal invariant breaks: every class index
/// iterated is below `classes.class_count()`.
pub fn binarize_classes(classes: &ClassHypervectors) -> Vec<BipolarVector> {
    (0..classes.class_count())
        .map(|j| {
            let column = classes.class(j).expect("class index in range");
            BipolarVector::from_signs(&column)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::TrainConfig;
    use hd_tensor::rng::DetRng;

    #[test]
    fn pack_unpack_roundtrip() {
        let values = [1.5f32, -0.2, 0.0, -7.0, 3.0];
        let v = BipolarVector::from_signs(&values);
        assert_eq!(v.to_signs(), vec![1.0, -1.0, 1.0, -1.0, 1.0]);
        assert_eq!(v.dim(), 5);
        assert_eq!(v.sign(0), 1);
        assert_eq!(v.sign(3), -1);
    }

    #[test]
    fn hamming_identity_and_symmetry() {
        let mut rng = DetRng::new(61);
        let a_values: Vec<f32> = (0..200).map(|_| rng.next_normal()).collect();
        let b_values: Vec<f32> = (0..200).map(|_| rng.next_normal()).collect();
        let a = BipolarVector::from_signs(&a_values);
        let b = BipolarVector::from_signs(&b_values);
        assert_eq!(a.hamming_distance(&a), Some(0));
        assert_eq!(a.hamming_distance(&b), b.hamming_distance(&a));
    }

    #[test]
    fn dot_equals_d_minus_two_hamming() {
        let mut rng = DetRng::new(62);
        for dim in [1usize, 63, 64, 65, 130] {
            let a_values: Vec<f32> = (0..dim).map(|_| rng.next_normal()).collect();
            let b_values: Vec<f32> = (0..dim).map(|_| rng.next_normal()).collect();
            let a = BipolarVector::from_signs(&a_values);
            let b = BipolarVector::from_signs(&b_values);
            // Reference: dot of unpacked signs.
            let reference: i64 = a
                .to_signs()
                .iter()
                .zip(b.to_signs())
                .map(|(x, y)| (x * y) as i64)
                .sum();
            assert_eq!(a.dot(&b), Some(reference), "dim {dim}");
        }
    }

    #[test]
    fn padding_bits_do_not_leak() {
        // dim not a multiple of 64: padding must not affect distances.
        let a = BipolarVector::from_signs(&[1.0; 70]);
        let b = BipolarVector::from_signs(&[-1.0; 70]);
        assert_eq!(a.hamming_distance(&b), Some(70));
    }

    #[test]
    fn dimension_mismatch_is_none() {
        let a = BipolarVector::from_signs(&[1.0; 10]);
        let b = BipolarVector::from_signs(&[1.0; 11]);
        assert_eq!(a.hamming_distance(&b), None);
        assert_eq!(a.dot(&b), None);
    }

    fn trained() -> (HdcModel, Matrix, Vec<usize>) {
        let mut rng = DetRng::new(63);
        let mut features = Matrix::random_normal(90, 12, &mut rng);
        let labels: Vec<usize> = (0..90).map(|i| i % 3).collect();
        for (i, &l) in labels.iter().enumerate() {
            features.row_mut(i)[l * 2] += 2.5;
            features.row_mut(i)[l * 2 + 1] += 2.5;
        }
        let config = TrainConfig::new(2048).with_iterations(6).with_seed(64);
        let (model, _) = HdcModel::fit(&features, &labels, 3, &config).unwrap();
        (model, features, labels)
    }

    #[test]
    fn binarized_model_stays_accurate_on_separable_data() {
        let (model, features, labels) = trained();
        let float_acc = crate::eval::accuracy(&model.predict(&features).unwrap(), &labels).unwrap();
        let bipolar = BipolarModel::binarize(&model);
        let bip_acc = crate::eval::accuracy(&bipolar.predict(&features).unwrap(), &labels).unwrap();
        assert!(float_acc > 0.95);
        assert!(
            bip_acc > float_acc - 0.1,
            "bipolar accuracy {bip_acc} vs float {float_acc}"
        );
    }

    #[test]
    fn binarized_model_is_32x_smaller() {
        let (model, _, _) = trained();
        let bipolar = BipolarModel::binarize(&model);
        let float_bytes = model.dim() * model.class_count() * 4;
        assert!(bipolar.class_bytes() * 30 < float_bytes);
        assert_eq!(bipolar.class_count(), 3);
        assert_eq!(bipolar.dim(), 2048);
    }

    #[test]
    fn binarize_classes_matches_column_signs() {
        let (model, _, _) = trained();
        let packed = binarize_classes(model.classes());
        let column = model.classes().class(1).unwrap();
        for (i, &v) in column.iter().enumerate().take(100) {
            let expected = if v >= 0.0 { 1 } else { -1 };
            assert_eq!(packed[1].sign(i), expected, "component {i}");
        }
    }
}
