//! Bipolar (1-bit) hypervectors: the classic Kanerva-style HDC
//! representation used by the FPGA and in-memory accelerators in the
//! paper's related work.
//!
//! A trained real-valued model binarizes to signs: each hypervector
//! component becomes `+1` or `-1`, packed 64 components per machine word,
//! and the dot-product similarity becomes a Hamming distance
//! (`dot(sign(a), sign(b)) = d - 2 * hamming(a, b)`), computable with XOR
//! and popcount. This cuts model storage 32x and turns the associative
//! search into pure bit arithmetic — the trade the paper's "lightweight
//! edge" motivation points at, at a small accuracy cost that
//! [`BipolarModel`] lets a user measure directly.
//!
//! The kernels live in [`hd_tensor::packed`]: [`BipolarVector`] is the
//! packed type itself, and [`BipolarModel`] keeps its class hypervectors
//! resident in a [`PackedClassHypervectors`] scan table so batch
//! prediction is one flat XOR+popcount sweep per query. Besides
//! binarizing a trained float model, [`BipolarModel::fit_bundled`] trains
//! one-shot in the packed domain: per-class majority bundling of the
//! binarized encoded samples through bit-sliced vertical counters, never
//! materializing a float class matrix.

use serde::{Deserialize, Serialize};

use hd_tensor::packed::{majority_bundle, PackedClassHypervectors};
use hd_tensor::rng::DetRng;
use hd_tensor::Matrix;

use crate::encoder::{BaseHypervectors, Encoder, NonlinearEncoder};
use crate::error::HdcError;
use crate::model::{ClassHypervectors, HdcModel};
use crate::train::TrainConfig;
use crate::Result;

/// A packed vector of `+1`/`-1` components (bit set = `+1`) — re-exported
/// from the kernel layer in [`hd_tensor::packed`].
///
/// # Examples
///
/// ```
/// use hdc::bipolar::BipolarVector;
///
/// let a = BipolarVector::from_signs(&[1.0, -2.0, 0.5]);
/// let b = BipolarVector::from_signs(&[1.0, 2.0, 0.5]);
/// assert_eq!(a.hamming(&b).unwrap(), 1);
/// assert_eq!(a.dot(&b).unwrap(), 1); // 3 - 2*1
/// ```
pub use hd_tensor::packed::PackedBipolar as BipolarVector;

/// A binarized HDC classifier: the float encoder is kept (encoding must
/// stay informative), but the *query* hypervector and the class
/// hypervectors reduce to signs, so the associative search runs on packed
/// bits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BipolarModel {
    encoder: crate::encoder::NonlinearEncoder,
    classes: PackedClassHypervectors,
}

impl BipolarModel {
    /// Binarizes a trained real-valued model.
    ///
    /// # Panics
    ///
    /// Panics only if an internal invariant breaks: a trained model
    /// always has at least one class of non-zero dimensionality.
    #[must_use]
    pub fn binarize(model: &HdcModel) -> Self {
        let packed = binarize_classes(model.classes());
        BipolarModel {
            encoder: model.encoder().clone(),
            classes: PackedClassHypervectors::from_classes(&packed)
                .expect("trained model has non-empty classes"),
        }
    }

    /// Assembles a bipolar model from an encoder and packed classes.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] when the encoder and class
    /// dimensionalities disagree.
    pub fn from_parts(encoder: NonlinearEncoder, classes: PackedClassHypervectors) -> Result<Self> {
        if encoder.base().dim() != classes.dim() {
            return Err(HdcError::InvalidConfig(
                "encoder dimensionality does not match packed class hypervectors",
            ));
        }
        Ok(BipolarModel { encoder, classes })
    }

    /// One-shot HDC training entirely in the packed domain: encode each
    /// sample, binarize it, and majority-bundle each class's samples
    /// through the bit-sliced vertical counters in
    /// [`hd_tensor::packed::majority_bundle`]. No float class matrix is
    /// ever materialized. A class with no samples gets the all-`+1`
    /// vector (the majority rule applied to an empty vote: the zero sum
    /// binarizes to `+1`).
    ///
    /// # Errors
    ///
    /// * [`HdcError::EmptyDataset`] — no samples or `classes == 0`.
    /// * [`HdcError::LabelCount`] / [`HdcError::LabelOutOfRange`] — label
    ///   problems.
    /// * [`HdcError::InvalidConfig`] — bad dimension/iterations/rate.
    pub fn fit_bundled(
        features: &Matrix,
        labels: &[usize],
        classes: usize,
        config: &TrainConfig,
    ) -> Result<Self> {
        config.validate()?;
        if features.rows() == 0 || classes == 0 {
            return Err(HdcError::EmptyDataset);
        }
        if labels.len() != features.rows() {
            return Err(HdcError::LabelCount {
                samples: features.rows(),
                labels: labels.len(),
            });
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= classes) {
            return Err(HdcError::LabelOutOfRange {
                label: bad,
                classes,
            });
        }
        let mut rng = DetRng::new(config.seed);
        let base = BaseHypervectors::generate(features.cols(), config.dim, &mut rng);
        let encoder = NonlinearEncoder::new(base);
        let encoded = encoder.encode(features)?;

        let mut members: Vec<Vec<BipolarVector>> = vec![Vec::new(); classes];
        for (r, &label) in labels.iter().enumerate() {
            members[label].push(BipolarVector::from_signs(encoded.row(r)));
        }
        let bundled: Vec<BipolarVector> = members
            .iter()
            .map(|m| {
                if m.is_empty() {
                    Ok(BipolarVector::from_signs(&vec![0.0; config.dim]))
                } else {
                    majority_bundle(m).map_err(HdcError::from)
                }
            })
            .collect::<Result<_>>()?;
        let classes = PackedClassHypervectors::from_classes(&bundled).map_err(HdcError::from)?;
        Ok(BipolarModel { encoder, classes })
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.class_count()
    }

    /// Hypervector dimensionality.
    pub fn dim(&self) -> usize {
        self.classes.dim()
    }

    /// Packed class-model storage in bytes (vs `4 * d * k` for f32).
    pub fn class_bytes(&self) -> usize {
        self.classes.byte_size()
    }

    /// The resident packed class hypervectors.
    pub fn packed_classes(&self) -> &PackedClassHypervectors {
        &self.classes
    }

    /// Predicts labels for a batch of raw samples: encode in f32,
    /// binarize the queries, scan the packed classes at minimum Hamming
    /// distance (ties to the lowest class index, like the float argmax).
    ///
    /// # Errors
    ///
    /// Returns a wrapped shape error on a feature-count mismatch.
    pub fn predict(&self, features: &Matrix) -> Result<Vec<usize>> {
        let encoded = self.encoder.encode(features)?;
        self.predict_encoded(&encoded)
    }

    /// Predicts labels for already-encoded (float) hypervectors.
    ///
    /// # Errors
    ///
    /// Returns a wrapped shape error on a dimensionality mismatch.
    pub fn predict_encoded(&self, encoded: &Matrix) -> Result<Vec<usize>> {
        let queries: Vec<BipolarVector> = (0..encoded.rows())
            .map(|r| BipolarVector::from_signs(encoded.row(r)))
            .collect();
        self.classes.predict_batch(&queries).map_err(HdcError::from)
    }
}

/// Binarizes class hypervectors column-wise (one packed vector per class).
///
/// # Panics
///
/// Panics only if an internal invariant breaks: every class index
/// iterated is below `classes.class_count()`.
pub fn binarize_classes(classes: &ClassHypervectors) -> Vec<BipolarVector> {
    (0..classes.class_count())
        .map(|j| {
            let column = classes.class(j).expect("class index in range");
            BipolarVector::from_signs(&column)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::TrainConfig;
    use hd_tensor::rng::DetRng;

    #[test]
    fn pack_unpack_roundtrip() {
        let values = [1.5f32, -0.2, 0.0, -7.0, 3.0];
        let v = BipolarVector::from_signs(&values);
        assert_eq!(v.to_signs(), vec![1.0, -1.0, 1.0, -1.0, 1.0]);
        assert_eq!(v.dim(), 5);
        assert_eq!(v.sign(0), 1);
        assert_eq!(v.sign(3), -1);
    }

    #[test]
    fn hamming_identity_and_symmetry() {
        let mut rng = DetRng::new(61);
        let a_values: Vec<f32> = (0..200).map(|_| rng.next_normal()).collect();
        let b_values: Vec<f32> = (0..200).map(|_| rng.next_normal()).collect();
        let a = BipolarVector::from_signs(&a_values);
        let b = BipolarVector::from_signs(&b_values);
        assert_eq!(a.hamming(&a).unwrap(), 0);
        assert_eq!(a.hamming(&b).unwrap(), b.hamming(&a).unwrap());
    }

    #[test]
    fn dot_equals_d_minus_two_hamming() {
        let mut rng = DetRng::new(62);
        for dim in [1usize, 63, 64, 65, 130] {
            let a_values: Vec<f32> = (0..dim).map(|_| rng.next_normal()).collect();
            let b_values: Vec<f32> = (0..dim).map(|_| rng.next_normal()).collect();
            let a = BipolarVector::from_signs(&a_values);
            let b = BipolarVector::from_signs(&b_values);
            // Reference: dot of unpacked signs.
            let reference: i64 = a
                .to_signs()
                .iter()
                .zip(b.to_signs())
                .map(|(x, y)| (x * y) as i64)
                .sum();
            assert_eq!(a.dot(&b).unwrap(), reference, "dim {dim}");
        }
    }

    #[test]
    fn padding_bits_do_not_leak() {
        // dim not a multiple of 64: padding must not affect distances.
        let a = BipolarVector::from_signs(&[1.0; 70]);
        let b = BipolarVector::from_signs(&[-1.0; 70]);
        assert_eq!(a.hamming(&b).unwrap(), 70);
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let a = BipolarVector::from_signs(&[1.0; 10]);
        let b = BipolarVector::from_signs(&[1.0; 11]);
        assert!(a.hamming(&b).is_err());
        assert!(a.dot(&b).is_err());
    }

    fn trained() -> (HdcModel, Matrix, Vec<usize>) {
        let mut rng = DetRng::new(63);
        let mut features = Matrix::random_normal(90, 12, &mut rng);
        let labels: Vec<usize> = (0..90).map(|i| i % 3).collect();
        for (i, &l) in labels.iter().enumerate() {
            features.row_mut(i)[l * 2] += 2.5;
            features.row_mut(i)[l * 2 + 1] += 2.5;
        }
        let config = TrainConfig::new(2048).with_iterations(6).with_seed(64);
        let (model, _) = HdcModel::fit(&features, &labels, 3, &config).unwrap();
        (model, features, labels)
    }

    #[test]
    fn binarized_model_stays_accurate_on_separable_data() {
        let (model, features, labels) = trained();
        let float_acc = crate::eval::accuracy(&model.predict(&features).unwrap(), &labels).unwrap();
        let bipolar = BipolarModel::binarize(&model);
        let bip_acc = crate::eval::accuracy(&bipolar.predict(&features).unwrap(), &labels).unwrap();
        assert!(float_acc > 0.95);
        assert!(
            bip_acc > float_acc - 0.1,
            "bipolar accuracy {bip_acc} vs float {float_acc}"
        );
    }

    #[test]
    fn binarized_model_is_32x_smaller() {
        let (model, _, _) = trained();
        let bipolar = BipolarModel::binarize(&model);
        let float_bytes = model.dim() * model.class_count() * 4;
        assert!(bipolar.class_bytes() * 30 < float_bytes);
        assert_eq!(bipolar.class_count(), 3);
        assert_eq!(bipolar.dim(), 2048);
    }

    #[test]
    fn binarize_classes_matches_column_signs() {
        let (model, _, _) = trained();
        let packed = binarize_classes(model.classes());
        let column = model.classes().class(1).unwrap();
        for (i, &v) in column.iter().enumerate().take(100) {
            let expected = if v >= 0.0 { 1 } else { -1 };
            assert_eq!(packed[1].sign(i), expected, "component {i}");
        }
    }

    #[test]
    fn packed_predict_matches_scalar_hamming_scan() {
        let (model, features, _) = trained();
        let bipolar = BipolarModel::binarize(&model);
        let encoded = model.encoder().encode(&features).unwrap();
        let fast = bipolar.predict_encoded(&encoded).unwrap();
        // Scalar reference: per-row linear scan over standalone vectors.
        let classes = binarize_classes(model.classes());
        let slow: Vec<usize> = (0..encoded.rows())
            .map(|r| {
                let query = BipolarVector::from_signs(encoded.row(r));
                classes
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, c)| c.hamming(&query).unwrap())
                    .map(|(j, _)| j)
                    .unwrap()
            })
            .collect();
        assert_eq!(fast, slow);
    }

    #[test]
    fn fit_bundled_learns_separable_data() {
        let (_, features, labels) = trained();
        let config = TrainConfig::new(2048).with_seed(64);
        let model = BipolarModel::fit_bundled(&features, &labels, 3, &config).unwrap();
        let acc = crate::eval::accuracy(&model.predict(&features).unwrap(), &labels).unwrap();
        assert!(acc > 0.9, "bundled one-shot accuracy {acc}");
        assert_eq!(model.class_count(), 3);
        assert_eq!(model.dim(), 2048);
    }

    #[test]
    fn fit_bundled_validates_inputs() {
        let features = Matrix::zeros(4, 2);
        let config = TrainConfig::new(64);
        assert!(matches!(
            BipolarModel::fit_bundled(&Matrix::zeros(0, 2), &[], 2, &config).unwrap_err(),
            HdcError::EmptyDataset
        ));
        assert!(matches!(
            BipolarModel::fit_bundled(&features, &[0, 1], 2, &config).unwrap_err(),
            HdcError::LabelCount { .. }
        ));
        assert!(matches!(
            BipolarModel::fit_bundled(&features, &[0, 1, 2, 5], 2, &config).unwrap_err(),
            HdcError::LabelOutOfRange { .. }
        ));
    }

    #[test]
    fn fit_bundled_empty_class_gets_all_plus_one() {
        let mut rng = DetRng::new(65);
        let features = Matrix::random_normal(6, 4, &mut rng);
        let labels = vec![0usize; 6]; // class 1 never appears
        let config = TrainConfig::new(96).with_seed(66);
        let model = BipolarModel::fit_bundled(&features, &labels, 2, &config).unwrap();
        let class1 = model.packed_classes().class(1).unwrap();
        assert_eq!(class1.to_signs(), vec![1.0; 96]);
    }

    #[test]
    fn from_parts_checks_dimensions() {
        let mut rng = DetRng::new(67);
        let encoder = NonlinearEncoder::new(BaseHypervectors::generate(4, 128, &mut rng));
        let classes =
            PackedClassHypervectors::from_classes(&[BipolarVector::from_signs(&vec![1.0; 64])])
                .unwrap();
        assert!(BipolarModel::from_parts(encoder, classes).is_err());
    }
}
