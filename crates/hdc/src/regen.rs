//! Dimension regeneration: iteratively retire uninformative hypervector
//! dimensions and redraw them.
//!
//! In a trained HDC model, dimension `i` contributes to classification
//! through row `i` of the class matrix; if that row is nearly identical
//! across classes, the dimension separates nothing and its capacity is
//! wasted. The regeneration loop (in the spirit of the NeuralHD /
//! adaptive-basis line of work the paper's related work cites) scores
//! every dimension by the *variance of its class-hypervector row*,
//! redraws the base hypervector column for the weakest fraction, and
//! retrains briefly — recovering accuracy that a fixed random basis
//! leaves on the table, which matters most at small `d` (edge-memory
//! constrained deployments).
//!
//! # Examples
//!
//! ```
//! use hd_tensor::{rng::DetRng, Matrix};
//! use hdc::regen::{regenerate, RegenConfig};
//! use hdc::{HdcModel, TrainConfig};
//!
//! # fn main() -> Result<(), hdc::HdcError> {
//! let mut rng = DetRng::new(4);
//! let mut features = Matrix::random_normal(60, 10, &mut rng);
//! let labels: Vec<usize> = (0..60).map(|i| i % 3).collect();
//! for (i, &l) in labels.iter().enumerate() {
//!     features.row_mut(i)[l] += 2.0;
//! }
//! let (model, _) = HdcModel::fit(&features, &labels, 3, &TrainConfig::new(128))?;
//! let (better, stats) = regenerate(&model, &features, &labels, &RegenConfig::default())?;
//! assert_eq!(better.dim(), model.dim());
//! assert_eq!(stats.rounds.len(), 2);
//! # Ok(())
//! # }
//! ```

use serde::{Deserialize, Serialize};

use hd_tensor::rng::DetRng;
use hd_tensor::{stats, Matrix};

use crate::encoder::Encoder;

use crate::encoder::{BaseHypervectors, NonlinearEncoder};
use crate::error::HdcError;
use crate::model::{ClassHypervectors, HdcModel};
use crate::train::{train_encoded_warm, TrainConfig};
use crate::Result;

/// Configuration of the regeneration loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegenConfig {
    /// Fraction of dimensions redrawn per round, in `(0, 1)`.
    pub regen_fraction: f64,
    /// Retraining passes after each regeneration.
    pub iterations_per_round: usize,
    /// Number of regeneration rounds.
    pub rounds: usize,
    /// Update coefficient for the retraining passes.
    pub learning_rate: f32,
    /// Seed for the redrawn base columns.
    pub seed: u64,
}

impl Default for RegenConfig {
    fn default() -> Self {
        RegenConfig {
            regen_fraction: 0.1,
            iterations_per_round: 3,
            rounds: 2,
            learning_rate: 1.0,
            seed: 0x4E64,
        }
    }
}

impl RegenConfig {
    fn validate(&self) -> Result<()> {
        if !(self.regen_fraction > 0.0 && self.regen_fraction < 1.0) {
            return Err(HdcError::InvalidConfig("regen_fraction must be in (0, 1)"));
        }
        if self.iterations_per_round == 0 || self.rounds == 0 {
            return Err(HdcError::InvalidConfig(
                "iterations_per_round and rounds must be positive",
            ));
        }
        if !self.learning_rate.is_finite() || self.learning_rate <= 0.0 {
            return Err(HdcError::InvalidConfig("learning rate must be positive"));
        }
        Ok(())
    }
}

/// Telemetry of one regeneration round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegenRound {
    /// Zero-based round index.
    pub round: usize,
    /// Dimensions redrawn this round.
    pub regenerated: usize,
    /// Training accuracy after the round's retraining passes.
    pub train_accuracy: f64,
}

/// Full regeneration telemetry.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RegenStats {
    /// One entry per round.
    pub rounds: Vec<RegenRound>,
}

/// Scores every dimension by the variance of its class-hypervector row;
/// near-zero variance means the dimension does not separate classes.
pub fn dimension_scores(classes: &ClassHypervectors) -> Vec<f32> {
    let m = classes.as_matrix();
    (0..m.rows()).map(|i| stats::variance(m.row(i))).collect()
}

/// Runs the regeneration loop on a trained model.
///
/// # Errors
///
/// * [`HdcError::InvalidConfig`] — bad configuration.
/// * Label/shape errors propagated from encoding and retraining.
pub fn regenerate(
    model: &HdcModel,
    features: &Matrix,
    labels: &[usize],
    config: &RegenConfig,
) -> Result<(HdcModel, RegenStats)> {
    config.validate()?;
    let d = model.dim();
    let redraw_count = ((d as f64 * config.regen_fraction).round() as usize).clamp(1, d - 1);

    let mut base = model.encoder().base().as_matrix().clone();
    let mut classes = model.classes().clone();
    let mut rng = DetRng::new(config.seed);
    let mut stats_out = RegenStats::default();

    for round in 0..config.rounds {
        // Rank dimensions by discriminative power.
        let scores = dimension_scores(&classes);
        let mut order: Vec<usize> = (0..d).collect();
        order.sort_by(|&a, &b| {
            scores[a]
                .partial_cmp(&scores[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let victims = &order[..redraw_count];

        // Redraw base columns and clear the corresponding class rows.
        let mut class_matrix = classes.clone().into_matrix();
        for &dim in victims {
            for f in 0..base.rows() {
                base[(f, dim)] = rng.next_normal();
            }
            for k in 0..class_matrix.cols() {
                class_matrix[(dim, k)] = 0.0;
            }
        }

        // Re-encode with the updated basis and retrain warm.
        let encoder = NonlinearEncoder::new(BaseHypervectors::from_matrix(base.clone()));
        let encoded = encoder.encode(features)?;
        let train_config = TrainConfig::new(d)
            .with_iterations(config.iterations_per_round)
            .with_learning_rate(config.learning_rate)
            .with_seed(config.seed.wrapping_add(round as u64));
        let (retrained, train_stats) = train_encoded_warm(
            &encoded,
            labels,
            ClassHypervectors::from_matrix(class_matrix),
            &train_config,
            None,
        )?;
        classes = retrained;
        stats_out.rounds.push(RegenRound {
            round,
            regenerated: redraw_count,
            train_accuracy: train_stats.final_train_accuracy(),
        });
    }

    let final_model = HdcModel::from_parts(
        NonlinearEncoder::new(BaseHypervectors::from_matrix(base)),
        classes,
        model.similarity(),
    )?;
    Ok((final_model, stats_out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval;
    use crate::train::TrainConfig;

    fn noisy_dataset(seed: u64) -> (Matrix, Vec<usize>, Matrix, Vec<usize>) {
        // A harder task: 4 classes, weak signal, at tiny d regeneration
        // has headroom to help.
        let mut rng = DetRng::new(seed);
        let n = 16;
        let centers: Vec<Vec<f32>> = (0..4)
            .map(|_| (0..n).map(|_| 0.6 * rng.next_normal()).collect())
            .collect();
        let make = |count: usize, rng: &mut DetRng| {
            let mut m = Matrix::zeros(count, n);
            let mut labels = Vec::with_capacity(count);
            for s in 0..count {
                let c = s % 4;
                labels.push(c);
                for (v, center) in m.row_mut(s).iter_mut().zip(&centers[c]) {
                    *v = center + rng.next_normal();
                }
            }
            (m, labels)
        };
        let (train_f, train_l) = make(240, &mut rng);
        let (test_f, test_l) = make(120, &mut rng);
        (train_f, train_l, test_f, test_l)
    }

    #[test]
    fn regeneration_does_not_hurt_and_usually_helps_at_small_d() {
        let (train_f, train_l, test_f, test_l) = noisy_dataset(1);
        let config = TrainConfig::new(96).with_iterations(6).with_seed(2);
        let (model, _) = HdcModel::fit(&train_f, &train_l, 4, &config).unwrap();
        let before = eval::accuracy(&model.predict(&test_f).unwrap(), &test_l).unwrap();

        let regen_config = RegenConfig {
            regen_fraction: 0.2,
            iterations_per_round: 4,
            rounds: 3,
            ..RegenConfig::default()
        };
        let (better, stats) = regenerate(&model, &train_f, &train_l, &regen_config).unwrap();
        let after = eval::accuracy(&better.predict(&test_f).unwrap(), &test_l).unwrap();
        assert!(
            after >= before - 0.05,
            "regeneration regressed: {before} -> {after}"
        );
        assert_eq!(stats.rounds.len(), 3);
        assert!(stats.rounds.iter().all(|r| r.regenerated == 19)); // 20% of 96
    }

    #[test]
    fn dimension_scores_flag_dead_dimensions() {
        // Construct classes where dimension 0 is constant (useless) and
        // dimension 1 differs strongly.
        // 2 x 2 class matrix (d x k): each row is one dimension's value
        // across the two classes.
        let m = Matrix::from_rows(&[&[5.0, 5.0], &[-3.0, 3.0]]).unwrap();
        let classes = ClassHypervectors::from_matrix(m);
        let scores = dimension_scores(&classes);
        assert!(scores[0] < 1e-9, "constant row must score ~0: {scores:?}");
        assert!(
            scores[1] > 1.0,
            "discriminative row must score high: {scores:?}"
        );
    }

    #[test]
    fn preserves_model_shape_and_similarity() {
        let (train_f, train_l, _, _) = noisy_dataset(3);
        let config = TrainConfig::new(64).with_iterations(3).with_seed(4);
        let (model, _) = HdcModel::fit(&train_f, &train_l, 4, &config).unwrap();
        let (regen, _) = regenerate(&model, &train_f, &train_l, &RegenConfig::default()).unwrap();
        assert_eq!(regen.dim(), 64);
        assert_eq!(regen.feature_count(), 16);
        assert_eq!(regen.class_count(), 4);
        assert_eq!(regen.similarity(), model.similarity());
        // The basis actually changed.
        assert_ne!(
            regen.encoder().base().as_matrix(),
            model.encoder().base().as_matrix()
        );
    }

    #[test]
    fn config_validation() {
        let ok = RegenConfig::default();
        assert!(ok.validate().is_ok());
        let bad = RegenConfig {
            regen_fraction: 0.0,
            ..ok.clone()
        };
        assert!(bad.validate().is_err());
        let bad = RegenConfig {
            regen_fraction: 1.0,
            ..ok.clone()
        };
        assert!(bad.validate().is_err());
        let bad = RegenConfig {
            rounds: 0,
            ..ok.clone()
        };
        assert!(bad.validate().is_err());
        let bad = RegenConfig {
            iterations_per_round: 0,
            ..ok.clone()
        };
        assert!(bad.validate().is_err());
        let bad = RegenConfig {
            learning_rate: 0.0,
            ..ok
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let (train_f, train_l, _, _) = noisy_dataset(5);
        let config = TrainConfig::new(64).with_iterations(3).with_seed(6);
        let (model, _) = HdcModel::fit(&train_f, &train_l, 4, &config).unwrap();
        let (a, _) = regenerate(&model, &train_f, &train_l, &RegenConfig::default()).unwrap();
        let (b, _) = regenerate(&model, &train_f, &train_l, &RegenConfig::default()).unwrap();
        assert_eq!(a, b);
    }
}
