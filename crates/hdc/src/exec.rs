//! Execution placement for the HDC training phases.
//!
//! The paper's co-design is a *placement* decision: encoding (a
//! vector-matrix multiply) can run on an accelerator, while the
//! class-hypervector update (an element-wise op edge accelerators reject)
//! must stay on the host. [`Executor`] captures exactly that seam:
//! training loops call `encode_batch` and `train_classes` through a
//! handle instead of hard-coding where either phase runs, so the same
//! loop serves the all-host baseline and every accelerated setting.

use hd_tensor::Matrix;

use crate::encoder::Encoder;
use crate::model::ClassHypervectors;
use crate::train::{train_encoded, TrainConfig, TrainStats};
use crate::Result;

/// Where the phases of HDC training physically execute.
///
/// Implementors decide how each phase runs; the trait fixes only the
/// semantics. `train_classes` defaults to the host reference
/// implementation ([`train_encoded`]), because that is the paper's
/// placement for every setting — an accelerator-side implementor may
/// override it to return a typed rejection instead.
pub trait Executor: Send + Sync {
    /// Encodes a batch of samples through the given encoder.
    ///
    /// # Errors
    ///
    /// Shape errors from the encoder, or [`HdcError::Backend`] when a
    /// device-side encode path fails.
    ///
    /// [`HdcError::Backend`]: crate::HdcError::Backend
    fn encode_batch(&self, encoder: &dyn Encoder, batch: &Matrix) -> Result<Matrix>;

    /// Trains class hypervectors from encoded data.
    ///
    /// # Errors
    ///
    /// Label/shape errors from training, or [`HdcError::Backend`] when
    /// the executor cannot run the update phase at all.
    ///
    /// [`HdcError::Backend`]: crate::HdcError::Backend
    fn train_classes(
        &self,
        encoded: &Matrix,
        labels: &[usize],
        classes: usize,
        config: &TrainConfig,
    ) -> Result<(ClassHypervectors, TrainStats)> {
        train_encoded(encoded, labels, classes, config)
    }

    /// Runs the full encode→update chain for one training unit.
    ///
    /// The default implementation chains [`Executor::encode_batch`] and
    /// [`Executor::train_classes`] phase-serially; a pipelined executor
    /// overrides it to stream encoded chunks into the host update loop
    /// while later chunks are still being encoded. Overrides must keep
    /// the result bit-exact with the default chain (same sample order).
    ///
    /// # Errors
    ///
    /// Any error of the two chained phases.
    fn encode_train(
        &self,
        encoder: &dyn Encoder,
        batch: &Matrix,
        labels: &[usize],
        classes: usize,
        config: &TrainConfig,
    ) -> Result<(ClassHypervectors, TrainStats)> {
        let encoded = self.encode_batch(encoder, batch)?;
        self.train_classes(&encoded, labels, classes, config)
    }
}

/// The all-host reference executor: encodes in `f32` on the CPU and
/// trains class hypervectors with [`train_encoded`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostExecutor;

impl Executor for HostExecutor {
    fn encode_batch(&self, encoder: &dyn Encoder, batch: &Matrix) -> Result<Matrix> {
        encoder.encode(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{BaseHypervectors, NonlinearEncoder};
    use hd_tensor::rng::DetRng;

    #[test]
    fn host_executor_matches_direct_calls() {
        let mut rng = DetRng::new(5);
        let encoder = NonlinearEncoder::new(BaseHypervectors::generate(6, 64, &mut rng));
        let batch = Matrix::random_normal(10, 6, &mut rng);
        let labels: Vec<usize> = (0..10).map(|i| i % 2).collect();
        let config = TrainConfig::new(64).with_iterations(3).with_seed(6);

        let exec = HostExecutor;
        let encoded = exec.encode_batch(&encoder, &batch).unwrap();
        assert_eq!(encoded, encoder.encode(&batch).unwrap());

        let (classes, stats) = exec.train_classes(&encoded, &labels, 2, &config).unwrap();
        let (reference, ref_stats) = train_encoded(&encoded, &labels, 2, &config).unwrap();
        assert_eq!(classes.as_matrix(), reference.as_matrix());
        assert_eq!(stats, ref_stats);
    }

    #[test]
    fn executor_is_object_safe() {
        let exec: &dyn Executor = &HostExecutor;
        let mut rng = DetRng::new(7);
        let encoder = NonlinearEncoder::new(BaseHypervectors::generate(4, 32, &mut rng));
        let batch = Matrix::zeros(2, 4);
        assert_eq!(
            exec.encode_batch(&encoder, &batch).unwrap().shape(),
            (2, 32)
        );
    }
}
