use serde::{Deserialize, Serialize};

use hd_tensor::rng::DetRng;
use hd_tensor::{gemm, ops, Matrix};

use crate::error::HdcError;
use crate::Result;

/// The randomly generated base hypervectors of an HDC model: an `n x d`
/// matrix whose row `i` is the base hypervector `B_i` of input feature
/// `i`, with components drawn i.i.d. from `N(0, 1)`.
///
/// Rows of such a matrix are nearly orthogonal in high dimensions, which
/// is what lets the bundled encoding preserve each feature's contribution
/// (paper, Section III-A).
///
/// # Examples
///
/// ```
/// use hd_tensor::rng::DetRng;
/// use hdc::BaseHypervectors;
///
/// let mut rng = DetRng::new(42);
/// let base = BaseHypervectors::generate(16, 2048, &mut rng);
/// assert_eq!(base.feature_count(), 16);
/// assert_eq!(base.dim(), 2048);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaseHypervectors {
    matrix: Matrix,
}

impl BaseHypervectors {
    /// Generates base hypervectors for `n` features at dimensionality `d`.
    #[must_use]
    pub fn generate(n: usize, d: usize, rng: &mut DetRng) -> Self {
        BaseHypervectors {
            matrix: Matrix::random_normal(n, d, rng),
        }
    }

    /// Wraps an existing `n x d` matrix as base hypervectors (used by the
    /// bagging merge, which stacks and zero-pads sub-model bases).
    #[must_use]
    pub fn from_matrix(matrix: Matrix) -> Self {
        BaseHypervectors { matrix }
    }

    /// Number of input features `n`.
    pub fn feature_count(&self) -> usize {
        self.matrix.rows()
    }

    /// Hypervector dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.matrix.cols()
    }

    /// The underlying `n x d` matrix — the first-layer weights of the
    /// paper's wide-NN interpretation.
    pub fn as_matrix(&self) -> &Matrix {
        &self.matrix
    }

    /// Consumes `self` and returns the underlying matrix.
    pub fn into_matrix(self) -> Matrix {
        self.matrix
    }

    /// The base hypervector `B_i` of feature `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.feature_count()`.
    pub fn base(&self, i: usize) -> &[f32] {
        self.matrix.row(i)
    }

    /// Mean absolute pairwise cosine similarity over a sample of row
    /// pairs — a diagnostic for near-orthogonality (should approach zero
    /// as `d` grows).
    pub fn orthogonality_defect(&self) -> f32 {
        let n = self.feature_count();
        if n < 2 {
            return 0.0;
        }
        let mut total = 0.0;
        let mut pairs = 0;
        for i in 0..n.min(16) {
            for j in (i + 1)..n.min(16) {
                // Rows of one matrix always have equal length, so cosine
                // cannot fail here; skip the pair rather than panic.
                if let Ok(c) = ops::cosine(self.matrix.row(i), self.matrix.row(j)) {
                    total += c.abs();
                    pairs += 1;
                }
            }
        }
        if pairs == 0 {
            0.0
        } else {
            total / pairs as f32
        }
    }
}

/// The optional non-linearity an [`Encoder`] applies after the base
/// projection — the hidden-layer activation of the wide-NN interpretation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EncoderActivation {
    /// No activation: the linear mapping `E = F x B` of prior work.
    Identity,
    /// The paper's `tanh` non-linearity: `E = tanh(F x B)`.
    Tanh,
}

/// An HDC encoder: a base-hypervector projection followed by an optional
/// non-linearity.
///
/// Every encoder is fully described by its [`BaseHypervectors`] and its
/// [`EncoderActivation`]; `encode` and `encode_sample` are shared default
/// implementations over that description, so [`NonlinearEncoder`] and
/// [`LinearEncoder`] no longer duplicate the batched math, and execution
/// backends can compile *any* encoder to the accelerator from the same
/// two accessors.
pub trait Encoder: Send + Sync {
    /// The base hypervectors — the first-layer weights of the wide-NN
    /// interpretation.
    fn base(&self) -> &BaseHypervectors;

    /// The activation applied after the projection.
    fn activation(&self) -> EncoderActivation;

    /// Number of input features `n`.
    fn feature_count(&self) -> usize {
        self.base().feature_count()
    }

    /// Hypervector dimensionality `d`.
    fn dim(&self) -> usize {
        self.base().dim()
    }

    /// Encodes a batch of samples (one per row) into hypervectors.
    ///
    /// # Errors
    ///
    /// Returns a wrapped shape error if `batch.cols()` differs from the
    /// feature count.
    fn encode(&self, batch: &Matrix) -> Result<Matrix> {
        let mut encoded = gemm::matmul(batch, self.base().as_matrix()).map_err(HdcError::from)?;
        if self.activation() == EncoderActivation::Tanh {
            ops::tanh_inplace(encoded.as_mut_slice());
        }
        Ok(encoded)
    }

    /// Encodes a single sample.
    ///
    /// # Errors
    ///
    /// Returns a wrapped shape error on a feature-count mismatch.
    fn encode_sample(&self, sample: &[f32]) -> Result<Vec<f32>> {
        let mut encoded = gemm::matvec(sample, self.base().as_matrix()).map_err(HdcError::from)?;
        if self.activation() == EncoderActivation::Tanh {
            ops::tanh_inplace(&mut encoded);
        }
        Ok(encoded)
    }
}

/// The paper's non-linear encoder: `E = tanh(F x B)`.
///
/// Encoding is "indeed a vector-matrix multiplication that is ready to
/// accelerate on most hardware accelerators" — this type is the host-side
/// reference; the accelerated path runs the same computation as the first
/// two layers of the wide NN.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NonlinearEncoder {
    base: BaseHypervectors,
}

impl NonlinearEncoder {
    /// Creates an encoder over the given base hypervectors.
    #[must_use]
    pub fn new(base: BaseHypervectors) -> Self {
        NonlinearEncoder { base }
    }

    /// The base hypervectors.
    pub fn base(&self) -> &BaseHypervectors {
        &self.base
    }
}

impl Encoder for NonlinearEncoder {
    fn base(&self) -> &BaseHypervectors {
        &self.base
    }

    fn activation(&self) -> EncoderActivation {
        EncoderActivation::Tanh
    }
}

/// The *linear* encoder `E = F x B` that most prior work used before the
/// paper ("Most prior works have tried to encode the input using linear
/// mapping. However, in this work, we adopt a non-linear mapping which
/// achieves higher learning accuracy" — Section III-A).
///
/// Kept as the ablation baseline: the `ablation_encoding` bench binary
/// compares the two on every paper dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearEncoder {
    base: BaseHypervectors,
}

impl LinearEncoder {
    /// Creates a linear encoder over the given base hypervectors.
    #[must_use]
    pub fn new(base: BaseHypervectors) -> Self {
        LinearEncoder { base }
    }

    /// The base hypervectors.
    pub fn base(&self) -> &BaseHypervectors {
        &self.base
    }
}

impl Encoder for LinearEncoder {
    fn base(&self) -> &BaseHypervectors {
        &self.base
    }

    fn activation(&self) -> EncoderActivation {
        EncoderActivation::Identity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encoder(n: usize, d: usize, seed: u64) -> NonlinearEncoder {
        let mut rng = DetRng::new(seed);
        NonlinearEncoder::new(BaseHypervectors::generate(n, d, &mut rng))
    }

    #[test]
    fn encoded_width_is_d() {
        let enc = encoder(8, 256, 1);
        let batch = Matrix::filled(3, 8, 0.5);
        let out = enc.encode(&batch).unwrap();
        assert_eq!(out.shape(), (3, 256));
    }

    #[test]
    fn encoding_is_bounded_by_tanh() {
        let enc = encoder(8, 128, 2);
        let batch = Matrix::filled(2, 8, 100.0);
        let out = enc.encode(&batch).unwrap();
        assert!(out.iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    #[test]
    fn zero_input_encodes_to_zero() {
        let enc = encoder(8, 64, 3);
        let out = enc.encode(&Matrix::zeros(1, 8)).unwrap();
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn encode_sample_matches_batch_row() {
        let enc = encoder(10, 100, 4);
        let mut rng = DetRng::new(5);
        let batch = Matrix::random_normal(4, 10, &mut rng);
        let full = enc.encode(&batch).unwrap();
        for r in 0..4 {
            let single = enc.encode_sample(batch.row(r)).unwrap();
            for (a, b) in full.row(r).iter().zip(&single) {
                assert!((a - b).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn feature_mismatch_rejected() {
        let enc = encoder(8, 64, 6);
        assert!(enc.encode(&Matrix::zeros(1, 9)).is_err());
        assert!(enc.encode_sample(&[0.0; 9]).is_err());
    }

    #[test]
    fn bases_are_nearly_orthogonal_at_high_dim() {
        let mut rng = DetRng::new(7);
        let narrow = BaseHypervectors::generate(16, 32, &mut rng);
        let wide = BaseHypervectors::generate(16, 8192, &mut rng);
        assert!(
            wide.orthogonality_defect() < narrow.orthogonality_defect(),
            "orthogonality should improve with dimensionality"
        );
        assert!(wide.orthogonality_defect() < 0.05);
    }

    #[test]
    fn generation_is_deterministic() {
        let mut r1 = DetRng::new(9);
        let mut r2 = DetRng::new(9);
        assert_eq!(
            BaseHypervectors::generate(4, 32, &mut r1),
            BaseHypervectors::generate(4, 32, &mut r2)
        );
    }

    #[test]
    fn linear_encoder_is_unbounded_and_matches_gemm() {
        let mut rng = DetRng::new(77);
        let base = BaseHypervectors::generate(6, 32, &mut rng);
        let linear = LinearEncoder::new(base.clone());
        let batch = Matrix::filled(2, 6, 10.0);
        let out = linear.encode(&batch).unwrap();
        // Unlike tanh encoding, linear outputs exceed [-1, 1].
        assert!(out.iter().any(|&v| v.abs() > 1.0));
        let reference = gemm::matmul(&batch, base.as_matrix()).unwrap();
        assert_eq!(out, reference);
    }

    #[test]
    fn linear_encode_sample_matches_batch() {
        let mut rng = DetRng::new(78);
        let linear = LinearEncoder::new(BaseHypervectors::generate(5, 16, &mut rng));
        let batch = Matrix::random_normal(3, 5, &mut rng);
        let full = linear.encode(&batch).unwrap();
        let single = linear.encode_sample(batch.row(1)).unwrap();
        for (a, b) in full.row(1).iter().zip(&single) {
            assert!((a - b).abs() < 1e-5);
        }
        assert!(linear.encode_sample(&[0.0; 6]).is_err());
    }

    #[test]
    fn trait_object_encoding_matches_concrete() {
        let enc = encoder(8, 64, 12);
        let dyn_enc: &dyn Encoder = &enc;
        let mut rng = DetRng::new(13);
        let batch = Matrix::random_normal(3, 8, &mut rng);
        assert_eq!(dyn_enc.encode(&batch).unwrap(), enc.encode(&batch).unwrap());
        assert_eq!(dyn_enc.activation(), EncoderActivation::Tanh);
        assert_eq!(dyn_enc.feature_count(), 8);
        assert_eq!(dyn_enc.dim(), 64);

        let linear = LinearEncoder::new(enc.base().clone());
        let dyn_linear: &dyn Encoder = &linear;
        assert_eq!(dyn_linear.activation(), EncoderActivation::Identity);
        assert_eq!(
            dyn_linear.encode(&batch).unwrap(),
            gemm::matmul(&batch, enc.base().as_matrix()).unwrap()
        );
    }

    #[test]
    fn similar_inputs_encode_similarly() {
        let enc = encoder(12, 2048, 10);
        let mut rng = DetRng::new(11);
        let a: Vec<f32> = (0..12).map(|_| rng.next_normal()).collect();
        let mut b = a.clone();
        b[0] += 0.01; // tiny perturbation
        let c: Vec<f32> = (0..12).map(|_| rng.next_normal()).collect();

        let ea = enc.encode_sample(&a).unwrap();
        let eb = enc.encode_sample(&b).unwrap();
        let ec = enc.encode_sample(&c).unwrap();
        let sim_ab = ops::cosine(&ea, &eb).unwrap();
        let sim_ac = ops::cosine(&ea, &ec).unwrap();
        assert!(
            sim_ab > sim_ac,
            "perturbed input ({sim_ab}) should stay closer than random ({sim_ac})"
        );
        assert!(sim_ab > 0.99);
    }
}
