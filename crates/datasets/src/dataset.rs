use serde::{Deserialize, Serialize};

use hd_tensor::rng::DetRng;
use hd_tensor::{stats, Matrix};

/// One partition of a dataset: a `samples x features` matrix plus one
/// label per row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Split {
    /// Feature matrix, one sample per row.
    pub features: Matrix,
    /// Class label of each row.
    pub labels: Vec<usize>,
}

impl Split {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the split is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Shuffles samples and labels together.
    ///
    /// # Panics
    ///
    /// Panics only if an internal invariant breaks: the permutation is
    /// always a rearrangement of in-range row indices.
    pub fn shuffle(&mut self, rng: &mut DetRng) {
        let mut order: Vec<usize> = (0..self.len()).collect();
        rng.shuffle(&mut order);
        let features = self
            .features
            .select_rows(&order)
            .expect("permutation indices are in range");
        let labels = order.iter().map(|&i| self.labels[i]).collect();
        self.features = features;
        self.labels = labels;
    }
}

/// A train/test dataset pair.
///
/// # Examples
///
/// ```
/// use hd_datasets::{registry, SampleBudget};
///
/// # fn main() -> Result<(), hd_datasets::DatasetError> {
/// let spec = registry::by_name("pamap2").expect("registered");
/// let mut data = spec.generate(SampleBudget::Reduced { train: 100, test: 40 }, 3)?;
/// data.normalize();
/// assert_eq!(data.train.len(), 100);
/// assert_eq!(data.test.len(), 40);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Name of the (synthetic stand-in) dataset.
    pub name: String,
    /// Number of classes.
    pub classes: usize,
    /// Training partition.
    pub train: Split,
    /// Held-out test partition.
    pub test: Split,
}

impl Dataset {
    /// Number of input features per sample.
    pub fn feature_count(&self) -> usize {
        self.train.features.cols()
    }

    /// Z-score normalizes every feature using statistics of the
    /// **training** split only (the test split is transformed with the
    /// train statistics, as any leak-free pipeline must).
    ///
    /// # Panics
    ///
    /// Panics only if an internal invariant breaks: every feature index
    /// iterated is below the train split's column count.
    pub fn normalize(&mut self) {
        let n = self.feature_count();
        let mut means = vec![0.0f32; n];
        let mut stds = vec![1.0f32; n];
        for f in 0..n {
            let col = self.train.features.col(f).expect("feature index in range");
            means[f] = stats::mean(&col);
            let sd = stats::std_dev(&col);
            stds[f] = if sd > 1e-12 { sd } else { 1.0 };
        }
        for split in [&mut self.train, &mut self.test] {
            for r in 0..split.features.rows() {
                let row = split.features.row_mut(r);
                for (f, v) in row.iter_mut().enumerate() {
                    *v = (*v - means[f]) / stds[f];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dataset() -> Dataset {
        Dataset {
            name: "tiny".into(),
            classes: 2,
            train: Split {
                features: Matrix::from_rows(&[&[1.0, 10.0], &[3.0, 30.0], &[5.0, 50.0]]).unwrap(),
                labels: vec![0, 1, 0],
            },
            test: Split {
                features: Matrix::from_rows(&[&[2.0, 20.0]]).unwrap(),
                labels: vec![1],
            },
        }
    }

    #[test]
    fn normalize_zero_means_unit_std_on_train() {
        let mut d = tiny_dataset();
        d.normalize();
        for f in 0..2 {
            let col = d.train.features.col(f).unwrap();
            assert!(stats::mean(&col).abs() < 1e-6);
            assert!((stats::std_dev(&col) - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn normalize_uses_train_statistics_for_test() {
        let mut d = tiny_dataset();
        d.normalize();
        // Test sample (2, 20) under train stats (mean 3, std ~1.63 per dim
        // scaled): both features normalize identically by construction.
        let a = d.test.features[(0, 0)];
        let b = d.test.features[(0, 1)];
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn constant_feature_does_not_divide_by_zero() {
        let mut d = Dataset {
            name: "const".into(),
            classes: 1,
            train: Split {
                features: Matrix::filled(3, 1, 7.0),
                labels: vec![0, 0, 0],
            },
            test: Split {
                features: Matrix::filled(1, 1, 7.0),
                labels: vec![0],
            },
        };
        d.normalize();
        assert!(d.train.features.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn shuffle_preserves_pairs() {
        let mut d = tiny_dataset();
        let before: Vec<(Vec<f32>, usize)> = (0..d.train.len())
            .map(|i| (d.train.features.row(i).to_vec(), d.train.labels[i]))
            .collect();
        let mut rng = DetRng::new(1);
        d.train.shuffle(&mut rng);
        let mut after: Vec<(Vec<f32>, usize)> = (0..d.train.len())
            .map(|i| (d.train.features.row(i).to_vec(), d.train.labels[i]))
            .collect();
        for pair in &before {
            let pos = after.iter().position(|p| p == pair);
            assert!(pos.is_some(), "pair lost in shuffle");
            after.remove(pos.unwrap());
        }
    }

    #[test]
    fn split_len_and_empty() {
        let d = tiny_dataset();
        assert_eq!(d.train.len(), 3);
        assert!(!d.train.is_empty());
        assert_eq!(d.feature_count(), 2);
    }
}
