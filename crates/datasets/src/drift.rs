//! Concept-drift generators for online-adaptation experiments.
//!
//! Edge deployments face "the dynamics of many IoT practices, which
//! require model updates frequently to follow the rapidly changing
//! inputs" (paper, introduction). This module synthesizes those dynamics:
//! a [`DriftConfig`] perturbs a trained-on distribution the way a
//! re-mounted wearable or recalibrated sensor would, and
//! [`DriftStream`] yields progressively drifting batches for evaluating
//! online adaptation (see the `activity_monitoring` example and the
//! online trainer in the `hdc` crate).

use hd_tensor::rng::DetRng;
use hd_tensor::Matrix;

use crate::dataset::Split;
use crate::error::DatasetError;
use crate::Result;

/// A feature-space drift: a fixed offset applied to a random subset of
/// features, optionally with per-feature gain change.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftConfig {
    /// Fraction of features affected, in `(0, 1]`.
    pub affected_fraction: f64,
    /// Mean of the additive offset applied to affected features.
    pub offset: f32,
    /// Standard deviation of the per-feature offset jitter.
    pub offset_jitter: f32,
    /// Multiplicative gain applied to affected features (1.0 = none).
    pub gain: f32,
    /// Seed selecting which features drift.
    pub seed: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            affected_fraction: 0.3,
            offset: 0.8,
            offset_jitter: 0.1,
            gain: 1.0,
            seed: 0xD81F7,
        }
    }
}

impl DriftConfig {
    fn validate(&self) -> Result<()> {
        if !(self.affected_fraction > 0.0 && self.affected_fraction <= 1.0) {
            return Err(DatasetError::InvalidConfig(format!(
                "affected_fraction {} outside (0, 1]",
                self.affected_fraction
            )));
        }
        if !self.offset.is_finite() || !self.offset_jitter.is_finite() || !self.gain.is_finite() {
            return Err(DatasetError::InvalidConfig(
                "drift parameters must be finite".into(),
            ));
        }
        Ok(())
    }
}

/// A concrete drift realization: which features moved and by how much.
#[derive(Debug, Clone, PartialEq)]
pub struct Drift {
    offsets: Vec<f32>,
    gains: Vec<f32>,
}

impl Drift {
    /// Samples a drift realization for `features`-wide data.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] for out-of-range
    /// parameters or zero features.
    pub fn sample(features: usize, config: &DriftConfig) -> Result<Self> {
        config.validate()?;
        if features == 0 {
            return Err(DatasetError::InvalidConfig("features is zero".into()));
        }
        let mut rng = DetRng::new(config.seed);
        let count =
            ((features as f64 * config.affected_fraction).round() as usize).clamp(1, features);
        let affected = rng.sample_without_replacement(features, count);
        let mut offsets = vec![0.0f32; features];
        let mut gains = vec![1.0f32; features];
        for &f in &affected {
            offsets[f] = config.offset + config.offset_jitter * rng.next_normal();
            gains[f] = config.gain;
        }
        Ok(Drift { offsets, gains })
    }

    /// Number of features this drift was sampled for.
    pub fn feature_count(&self) -> usize {
        self.offsets.len()
    }

    /// Number of features actually affected.
    pub fn affected_count(&self) -> usize {
        self.offsets
            .iter()
            .zip(&self.gains)
            .filter(|(&o, &g)| o != 0.0 || g != 1.0)
            .count()
    }

    /// Applies the drift to a feature matrix in place
    /// (`x' = gain * x + offset` per feature).
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] on a width mismatch.
    pub fn apply(&self, features: &mut Matrix) -> Result<()> {
        if features.cols() != self.offsets.len() {
            return Err(DatasetError::InvalidConfig(format!(
                "drift sampled for {} features, data has {}",
                self.offsets.len(),
                features.cols()
            )));
        }
        for r in 0..features.rows() {
            let row = features.row_mut(r);
            for ((v, &o), &g) in row.iter_mut().zip(&self.offsets).zip(&self.gains) {
                *v = g * *v + o;
            }
        }
        Ok(())
    }

    /// Applies the drift to a split's features in place.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] on a width mismatch.
    pub fn apply_split(&self, split: &mut Split) -> Result<()> {
        self.apply(&mut split.features)
    }
}

/// An iterator of progressively drifting copies of a base split: step `t`
/// carries `t / steps` of the full drift, modeling gradual sensor decay
/// rather than an abrupt change.
#[derive(Debug, Clone)]
pub struct DriftStream {
    base: Split,
    drift: Drift,
    steps: usize,
    current: usize,
}

impl DriftStream {
    /// Creates a stream of `steps` progressively drifted snapshots.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] if `steps == 0` or the
    /// drift width does not match the split.
    pub fn new(base: Split, drift: Drift, steps: usize) -> Result<Self> {
        if steps == 0 {
            return Err(DatasetError::InvalidConfig("steps is zero".into()));
        }
        if base.features.cols() != drift.feature_count() {
            return Err(DatasetError::InvalidConfig(
                "drift width does not match split".into(),
            ));
        }
        Ok(DriftStream {
            base,
            drift,
            steps,
            current: 0,
        })
    }

    /// Steps remaining.
    pub fn remaining(&self) -> usize {
        self.steps - self.current
    }
}

impl Iterator for DriftStream {
    type Item = Split;

    fn next(&mut self) -> Option<Split> {
        if self.current >= self.steps {
            return None;
        }
        self.current += 1;
        let t = self.current as f32 / self.steps as f32;
        let partial = Drift {
            offsets: self.drift.offsets.iter().map(|o| o * t).collect(),
            gains: self
                .drift
                .gains
                .iter()
                .map(|g| 1.0 + (g - 1.0) * t)
                .collect(),
        };
        let mut snapshot = self.base.clone();
        partial
            .apply_split(&mut snapshot)
            .expect("widths matched at construction");
        Some(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn split(rows: usize, cols: usize) -> Split {
        Split {
            features: Matrix::filled(rows, cols, 1.0),
            labels: vec![0; rows],
        }
    }

    #[test]
    fn sample_affects_requested_fraction() {
        let config = DriftConfig {
            affected_fraction: 0.5,
            ..DriftConfig::default()
        };
        let drift = Drift::sample(10, &config).unwrap();
        assert_eq!(drift.feature_count(), 10);
        assert_eq!(drift.affected_count(), 5);
    }

    #[test]
    fn apply_shifts_only_affected_features() {
        let config = DriftConfig {
            affected_fraction: 0.4,
            offset: 2.0,
            offset_jitter: 0.0,
            gain: 1.0,
            seed: 3,
        };
        let drift = Drift::sample(10, &config).unwrap();
        let mut m = Matrix::filled(3, 10, 1.0);
        drift.apply(&mut m).unwrap();
        let moved = m.row(0).iter().filter(|&&v| (v - 3.0).abs() < 1e-6).count();
        let stayed = m.row(0).iter().filter(|&&v| (v - 1.0).abs() < 1e-6).count();
        assert_eq!(moved, 4);
        assert_eq!(stayed, 6);
    }

    #[test]
    fn gain_multiplies() {
        let config = DriftConfig {
            affected_fraction: 1.0,
            offset: 0.0,
            offset_jitter: 0.0,
            gain: 2.0,
            seed: 4,
        };
        let drift = Drift::sample(4, &config).unwrap();
        let mut m = Matrix::filled(1, 4, 3.0);
        drift.apply(&mut m).unwrap();
        assert!(m.iter().all(|&v| (v - 6.0).abs() < 1e-6));
    }

    #[test]
    fn width_mismatch_rejected() {
        let drift = Drift::sample(4, &DriftConfig::default()).unwrap();
        let mut m = Matrix::zeros(1, 5);
        assert!(drift.apply(&mut m).is_err());
    }

    #[test]
    fn invalid_configs_rejected() {
        let bad = DriftConfig {
            affected_fraction: 0.0,
            ..DriftConfig::default()
        };
        assert!(Drift::sample(4, &bad).is_err());
        let bad = DriftConfig {
            offset: f32::NAN,
            ..DriftConfig::default()
        };
        assert!(Drift::sample(4, &bad).is_err());
        assert!(Drift::sample(0, &DriftConfig::default()).is_err());
    }

    #[test]
    fn drift_is_deterministic_per_seed() {
        let a = Drift::sample(16, &DriftConfig::default()).unwrap();
        let b = Drift::sample(16, &DriftConfig::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn stream_interpolates_monotonically() {
        let config = DriftConfig {
            affected_fraction: 1.0,
            offset: 4.0,
            offset_jitter: 0.0,
            gain: 1.0,
            seed: 5,
        };
        let drift = Drift::sample(3, &config).unwrap();
        let stream = DriftStream::new(split(1, 3), drift, 4).unwrap();
        let snapshots: Vec<Split> = stream.collect();
        assert_eq!(snapshots.len(), 4);
        // Feature value climbs 1 -> 5 in equal steps.
        for (i, snap) in snapshots.iter().enumerate() {
            let expected = 1.0 + 4.0 * (i + 1) as f32 / 4.0;
            assert!(
                (snap.features[(0, 0)] - expected).abs() < 1e-5,
                "step {i}: {} vs {expected}",
                snap.features[(0, 0)]
            );
        }
    }

    #[test]
    fn stream_validates_construction() {
        let drift = Drift::sample(3, &DriftConfig::default()).unwrap();
        assert!(DriftStream::new(split(1, 3), drift.clone(), 0).is_err());
        assert!(DriftStream::new(split(1, 4), drift, 2).is_err());
    }

    #[test]
    fn stream_remaining_counts_down() {
        let drift = Drift::sample(2, &DriftConfig::default()).unwrap();
        let mut stream = DriftStream::new(split(1, 2), drift, 3).unwrap();
        assert_eq!(stream.remaining(), 3);
        stream.next();
        assert_eq!(stream.remaining(), 2);
    }
}
