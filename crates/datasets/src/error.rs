use std::error::Error;
use std::fmt;

use hd_tensor::TensorError;

/// Error type for dataset generation and manipulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DatasetError {
    /// A generator parameter was out of range.
    InvalidConfig(String),
    /// An underlying tensor operation failed.
    Tensor(TensorError),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::InvalidConfig(msg) => write!(f, "invalid dataset config: {msg}"),
            DatasetError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl Error for DatasetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DatasetError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for DatasetError {
    fn from(e: TensorError) -> Self {
        DatasetError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = DatasetError::InvalidConfig("zero classes".into());
        assert!(e.to_string().contains("zero classes"));
        assert!(e.source().is_none());
        let e: DatasetError = TensorError::EmptyDimension { op: "x" }.into();
        assert!(e.source().is_some());
    }
}
