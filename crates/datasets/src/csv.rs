//! CSV import/export, so the synthetic stand-ins can be swapped for real
//! datasets (ISOLET, UCIHAR, ... as distributed by the UCI repository)
//! without any new dependencies.
//!
//! The dialect is deliberately plain: comma-separated numeric fields,
//! optional header line, one sample per row, the class label in a chosen
//! column. Labels may be arbitrary integers or strings; they are remapped
//! densely to `0..k` in first-appearance order and the mapping is
//! returned alongside the data.

use std::collections::BTreeMap;
use std::path::Path;

use hd_tensor::Matrix;

use crate::dataset::{Dataset, Split};
use crate::error::DatasetError;
use crate::Result;

/// Which column holds the class label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LabelColumn {
    /// The last column (the most common convention).
    Last,
    /// A zero-based column index.
    Index(usize),
}

/// CSV parsing options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvOptions {
    /// Skip the first line as a header.
    pub has_header: bool,
    /// Which column holds the label.
    pub label: LabelColumn,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            has_header: false,
            label: LabelColumn::Last,
        }
    }
}

/// The result of a CSV import: the samples plus the label mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct CsvImport {
    /// The parsed samples.
    pub split: Split,
    /// Number of distinct classes.
    pub classes: usize,
    /// Original label text of each dense class index.
    pub label_names: Vec<String>,
}

/// Parses CSV text into a [`Split`].
///
/// # Errors
///
/// Returns [`DatasetError::InvalidConfig`] with the line number for ragged
/// rows, non-numeric features, an out-of-range label column, or an empty
/// input.
///
/// # Examples
///
/// ```
/// use hd_datasets::csv::{parse_csv, CsvOptions};
///
/// # fn main() -> Result<(), hd_datasets::DatasetError> {
/// let text = "1.0,2.0,cat\n3.0,4.0,dog\n5.0,6.0,cat\n";
/// let import = parse_csv(text, &CsvOptions::default())?;
/// assert_eq!(import.split.len(), 3);
/// assert_eq!(import.classes, 2);
/// assert_eq!(import.label_names, vec!["cat", "dog"]);
/// assert_eq!(import.split.labels, vec![0, 1, 0]);
/// # Ok(())
/// # }
/// ```
pub fn parse_csv(text: &str, options: &CsvOptions) -> Result<CsvImport> {
    let mut lines = text.lines().enumerate();
    if options.has_header {
        lines.next();
    }

    let mut rows: Vec<Vec<f32>> = Vec::new();
    let mut raw_labels: Vec<String> = Vec::new();
    let mut width: Option<usize> = None;

    for (line_no, line) in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        let w = *width.get_or_insert(fields.len());
        if fields.len() != w {
            return Err(DatasetError::InvalidConfig(format!(
                "line {}: expected {w} fields, found {}",
                line_no + 1,
                fields.len()
            )));
        }
        let label_idx = match options.label {
            LabelColumn::Last => w - 1,
            LabelColumn::Index(i) => {
                if i >= w {
                    return Err(DatasetError::InvalidConfig(format!(
                        "label column {i} out of range for {w} fields"
                    )));
                }
                i
            }
        };
        let mut features = Vec::with_capacity(w - 1);
        for (i, field) in fields.iter().enumerate() {
            if i == label_idx {
                raw_labels.push(field.to_string());
            } else {
                let value: f32 = field.parse().map_err(|_| {
                    DatasetError::InvalidConfig(format!(
                        "line {}: `{field}` is not a number",
                        line_no + 1
                    ))
                })?;
                features.push(value);
            }
        }
        rows.push(features);
    }

    if rows.is_empty() {
        return Err(DatasetError::InvalidConfig("no data rows".into()));
    }

    // Dense label remapping in first-appearance order.
    let mut mapping: BTreeMap<String, usize> = BTreeMap::new();
    let mut label_names = Vec::new();
    let mut labels = Vec::with_capacity(raw_labels.len());
    for raw in &raw_labels {
        let next = mapping.len();
        let idx = *mapping.entry(raw.clone()).or_insert_with(|| {
            label_names.push(raw.clone());
            next
        });
        labels.push(idx);
    }

    let cols = rows[0].len();
    let mut features = Matrix::zeros(rows.len(), cols);
    for (r, row) in rows.iter().enumerate() {
        features.row_mut(r).copy_from_slice(row);
    }
    Ok(CsvImport {
        split: Split { features, labels },
        classes: mapping.len(),
        label_names,
    })
}

/// Reads and parses a CSV file.
///
/// # Errors
///
/// I/O failures surface as [`DatasetError::InvalidConfig`] with the path;
/// parse failures as in [`parse_csv`].
pub fn load_csv(path: impl AsRef<Path>, options: &CsvOptions) -> Result<CsvImport> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)
        .map_err(|e| DatasetError::InvalidConfig(format!("cannot read {}: {e}", path.display())))?;
    parse_csv(&text, options)
}

/// Splits an import into a [`Dataset`] with the trailing `test_fraction`
/// of rows held out (rows are assumed pre-shuffled; shuffle first
/// otherwise).
///
/// # Errors
///
/// Returns [`DatasetError::InvalidConfig`] if the fraction leaves either
/// side empty.
pub fn into_dataset(import: CsvImport, name: &str, test_fraction: f64) -> Result<Dataset> {
    if !(0.0..1.0).contains(&test_fraction) {
        return Err(DatasetError::InvalidConfig(format!(
            "test fraction {test_fraction} outside [0, 1)"
        )));
    }
    let total = import.split.len();
    let test_len = (total as f64 * test_fraction).round() as usize;
    let train_len = total - test_len;
    if train_len == 0 {
        return Err(DatasetError::InvalidConfig(
            "test fraction leaves no training rows".into(),
        ));
    }
    let train_features = import.split.features.slice_rows(0, train_len)?;
    let test_features = import.split.features.slice_rows(train_len, total)?;
    Ok(Dataset {
        name: name.to_owned(),
        classes: import.classes,
        train: Split {
            features: train_features,
            labels: import.split.labels[..train_len].to_vec(),
        },
        test: Split {
            features: test_features,
            labels: import.split.labels[train_len..].to_vec(),
        },
    })
}

/// Serializes a split back to CSV (features then the numeric label, one
/// sample per line).
pub fn to_csv(split: &Split) -> String {
    let mut out = String::new();
    for r in 0..split.len() {
        for v in split.features.row(r) {
            out.push_str(&format!("{v},"));
        }
        out.push_str(&format!("{}\n", split.labels[r]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_numeric_labels_densely() {
        let text = "0.5,1.5,7\n1.0,2.0,3\n0.0,1.0,7\n";
        let import = parse_csv(text, &CsvOptions::default()).unwrap();
        assert_eq!(import.classes, 2);
        assert_eq!(import.split.labels, vec![0, 1, 0]);
        assert_eq!(import.label_names, vec!["7", "3"]);
        assert_eq!(import.split.features.shape(), (3, 2));
        assert_eq!(import.split.features[(1, 1)], 2.0);
    }

    #[test]
    fn header_is_skipped_when_requested() {
        let text = "a,b,label\n1,2,0\n";
        let options = CsvOptions {
            has_header: true,
            ..CsvOptions::default()
        };
        let import = parse_csv(text, &options).unwrap();
        assert_eq!(import.split.len(), 1);
        // Without the flag the header row fails to parse as numbers.
        assert!(parse_csv(text, &CsvOptions::default()).is_err());
    }

    #[test]
    fn label_column_index_works() {
        let text = "cat,1.0,2.0\ndog,3.0,4.0\n";
        let options = CsvOptions {
            has_header: false,
            label: LabelColumn::Index(0),
        };
        let import = parse_csv(text, &options).unwrap();
        assert_eq!(import.label_names, vec!["cat", "dog"]);
        assert_eq!(import.split.features[(1, 0)], 3.0);
    }

    #[test]
    fn ragged_rows_report_line_numbers() {
        let text = "1,2,0\n1,2,3,0\n";
        let err = parse_csv(text, &CsvOptions::default()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn non_numeric_feature_reports_field() {
        let text = "1,potato,0\n";
        let err = parse_csv(text, &CsvOptions::default()).unwrap_err();
        assert!(err.to_string().contains("potato"), "{err}");
    }

    #[test]
    fn out_of_range_label_column_rejected() {
        let options = CsvOptions {
            has_header: false,
            label: LabelColumn::Index(9),
        };
        assert!(parse_csv("1,2,3\n", &options).is_err());
    }

    #[test]
    fn empty_input_rejected() {
        assert!(parse_csv("", &CsvOptions::default()).is_err());
        assert!(parse_csv("\n\n", &CsvOptions::default()).is_err());
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = "1,2,0\n\n3,4,1\n";
        let import = parse_csv(text, &CsvOptions::default()).unwrap();
        assert_eq!(import.split.len(), 2);
    }

    #[test]
    fn roundtrip_through_to_csv() {
        let text = "1,2,0\n3,4,1\n";
        let import = parse_csv(text, &CsvOptions::default()).unwrap();
        let emitted = to_csv(&import.split);
        let reparsed = parse_csv(&emitted, &CsvOptions::default()).unwrap();
        assert_eq!(reparsed.split, import.split);
    }

    #[test]
    fn into_dataset_splits_tail() {
        let text = "1,0\n2,0\n3,1\n4,1\n5,0\n";
        let import = parse_csv(text, &CsvOptions::default()).unwrap();
        let data = into_dataset(import, "csvset", 0.4).unwrap();
        assert_eq!(data.train.len(), 3);
        assert_eq!(data.test.len(), 2);
        assert_eq!(data.name, "csvset");
        assert_eq!(data.classes, 2);
    }

    #[test]
    fn into_dataset_validates_fraction() {
        let import = parse_csv("1,0\n", &CsvOptions::default()).unwrap();
        assert!(into_dataset(import.clone(), "x", 1.0).is_err());
        assert!(into_dataset(import, "x", -0.1).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("hyperedge-csv-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.csv");
        std::fs::write(&path, "1,2,0\n3,4,1\n").unwrap();
        let import = load_csv(&path, &CsvOptions::default()).unwrap();
        assert_eq!(import.split.len(), 2);
        assert!(load_csv(dir.join("missing.csv"), &CsvOptions::default()).is_err());
        std::fs::remove_file(&path).ok();
    }
}
