use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::generate::{generate, SyntheticConfig};
use crate::Result;

/// Difficulty profile of a synthetic stand-in: how separable the class
/// clusters are.
///
/// `separation` scales the distance between class centers and `noise`
/// the within-class spread; `informative_fraction` controls how many
/// features actually carry class signal (the rest are pure noise, as in
/// real sensor data).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DifficultyProfile {
    /// Scale of class-center separation.
    pub separation: f32,
    /// Within-class noise standard deviation.
    pub noise: f32,
    /// Fraction of features carrying class signal, in `(0, 1]`.
    pub informative_fraction: f32,
}

impl Default for DifficultyProfile {
    fn default() -> Self {
        DifficultyProfile {
            separation: 1.0,
            noise: 1.0,
            informative_fraction: 0.5,
        }
    }
}

/// How many samples to generate relative to the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SampleBudget {
    /// The full Table I sample count (train) plus a 20% test split.
    /// Appropriate for analytic-runtime computations; functional runs at
    /// this size can take minutes to hours.
    Paper,
    /// An explicit reduced size for functional (accuracy) experiments.
    Reduced {
        /// Training samples to generate.
        train: usize,
        /// Test samples to generate.
        test: usize,
    },
}

/// Static description of one paper dataset (a Table I row) plus the
/// difficulty profile of its synthetic stand-in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Lower-case dataset name (`"mnist"`, `"isolet"`, ...).
    pub name: &'static str,
    /// Table I sample count (used as the training-set size).
    pub train_samples: usize,
    /// Held-out test samples at paper scale (Table I count / 5).
    pub test_samples: usize,
    /// Input features per sample (`n`).
    pub features: usize,
    /// Number of classes (`k`).
    pub classes: usize,
    /// Table I description string.
    pub description: &'static str,
    /// Synthetic difficulty profile.
    pub difficulty: DifficultyProfile,
}

impl DatasetSpec {
    /// Generates a synthetic instance of this dataset.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`](crate::DatasetError) for a
    /// zero sample budget.
    pub fn generate(&self, budget: SampleBudget, seed: u64) -> Result<Dataset> {
        let (train, test) = match budget {
            SampleBudget::Paper => (self.train_samples, self.test_samples),
            SampleBudget::Reduced { train, test } => (train, test),
        };
        let config = SyntheticConfig {
            name: self.name.to_owned(),
            train_samples: train,
            test_samples: test,
            features: self.features,
            classes: self.classes,
            difficulty: self.difficulty,
            seed,
        };
        generate(&config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    #[test]
    fn generate_reduced_respects_budget() {
        let spec = registry::by_name("mnist").unwrap();
        let d = spec
            .generate(
                SampleBudget::Reduced {
                    train: 50,
                    test: 10,
                },
                7,
            )
            .unwrap();
        assert_eq!(d.train.len(), 50);
        assert_eq!(d.test.len(), 10);
        assert_eq!(d.feature_count(), 784);
        assert_eq!(d.classes, 10);
    }

    #[test]
    fn paper_budget_uses_table_i_counts() {
        let spec = registry::by_name("pamap2").unwrap();
        // PAMAP2 is small enough (27 features) to generate at paper scale
        // quickly.
        let d = spec.generate(SampleBudget::Paper, 7).unwrap();
        assert_eq!(d.train.len(), 32_768);
        assert_eq!(d.test.len(), 32_768 / 5);
    }

    #[test]
    fn default_difficulty_is_moderate() {
        let p = DifficultyProfile::default();
        assert!(p.separation > 0.0);
        assert!(p.informative_fraction <= 1.0);
    }
}
