//! The Table I dataset inventory.
//!
//! Each entry reproduces one paper dataset's shape exactly and assigns a
//! difficulty profile chosen so the synthetic stand-in lands in the same
//! broad accuracy band the paper reports for HDC on the real data (FACE
//! near-binary-easy, ISOLET/UCIHAR moderate multi-class, MNIST moderate,
//! PAMAP2 few-feature activity data).

use crate::spec::{DatasetSpec, DifficultyProfile};

/// All five paper datasets, in Table I order.
///
/// # Examples
///
/// ```
/// let all = hd_datasets::registry::paper_datasets();
/// assert_eq!(all.len(), 5);
/// assert_eq!(all[3].name, "mnist");
/// ```
pub fn paper_datasets() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            name: "face",
            train_samples: 80_854,
            test_samples: 80_854 / 5,
            features: 608,
            classes: 2,
            description: "Facial images (synthetic stand-in)",
            difficulty: DifficultyProfile {
                separation: 0.32,
                noise: 1.0,
                informative_fraction: 0.3,
            },
        },
        DatasetSpec {
            name: "isolet",
            train_samples: 7_797,
            test_samples: 7_797 / 5,
            features: 617,
            classes: 26,
            description: "Speech data (synthetic stand-in)",
            difficulty: DifficultyProfile {
                separation: 0.45,
                noise: 1.0,
                informative_fraction: 0.5,
            },
        },
        DatasetSpec {
            name: "ucihar",
            train_samples: 7_667,
            test_samples: 7_667 / 5,
            features: 561,
            classes: 12,
            description: "Human activity logs (synthetic stand-in)",
            difficulty: DifficultyProfile {
                separation: 0.45,
                noise: 1.0,
                informative_fraction: 0.4,
            },
        },
        DatasetSpec {
            name: "mnist",
            train_samples: 60_000,
            test_samples: 10_000,
            features: 784,
            classes: 10,
            description: "Handwritten digits (synthetic stand-in)",
            difficulty: DifficultyProfile {
                separation: 0.40,
                noise: 1.0,
                informative_fraction: 0.4,
            },
        },
        DatasetSpec {
            name: "pamap2",
            train_samples: 32_768,
            test_samples: 32_768 / 5,
            features: 27,
            classes: 5,
            description: "Human activity logs (synthetic stand-in)",
            difficulty: DifficultyProfile {
                separation: 0.6,
                noise: 1.0,
                informative_fraction: 0.9,
            },
        },
    ]
}

/// Looks up a paper dataset by its lower-case name.
///
/// # Examples
///
/// ```
/// assert!(hd_datasets::registry::by_name("mnist").is_some());
/// assert!(hd_datasets::registry::by_name("cifar").is_none());
/// ```
pub fn by_name(name: &str) -> Option<DatasetSpec> {
    paper_datasets().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_shapes_are_exact() {
        let expect = [
            ("face", 80_854, 608, 2),
            ("isolet", 7_797, 617, 26),
            ("ucihar", 7_667, 561, 12),
            ("mnist", 60_000, 784, 10),
            ("pamap2", 32_768, 27, 5),
        ];
        let all = paper_datasets();
        assert_eq!(all.len(), expect.len());
        for (spec, (name, samples, features, classes)) in all.iter().zip(expect) {
            assert_eq!(spec.name, name);
            assert_eq!(spec.train_samples, samples, "{name}");
            assert_eq!(spec.features, features, "{name}");
            assert_eq!(spec.classes, classes, "{name}");
        }
    }

    #[test]
    fn lookup_is_case_sensitive_lowercase() {
        assert!(by_name("isolet").is_some());
        assert!(by_name("ISOLET").is_none());
    }

    #[test]
    fn pamap2_has_the_fewest_features() {
        let all = paper_datasets();
        let min = all.iter().min_by_key(|s| s.features).unwrap();
        assert_eq!(min.name, "pamap2");
    }

    #[test]
    fn every_dataset_has_valid_difficulty() {
        for spec in paper_datasets() {
            let f = spec.difficulty.informative_fraction;
            assert!(f > 0.0 && f <= 1.0, "{}", spec.name);
            assert!(spec.difficulty.separation > 0.0, "{}", spec.name);
        }
    }
}
