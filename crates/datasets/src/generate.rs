use hd_tensor::rng::DetRng;
use hd_tensor::Matrix;

use crate::dataset::{Dataset, Split};
use crate::error::DatasetError;
use crate::spec::DifficultyProfile;
use crate::Result;

/// Full parameter set of the synthetic generator.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticConfig {
    /// Dataset name recorded in the output.
    pub name: String,
    /// Training samples to generate.
    pub train_samples: usize,
    /// Test samples to generate.
    pub test_samples: usize,
    /// Features per sample (`n`).
    pub features: usize,
    /// Number of classes (`k`).
    pub classes: usize,
    /// Cluster geometry.
    pub difficulty: DifficultyProfile,
    /// RNG seed; equal seeds give identical datasets.
    pub seed: u64,
}

fn validate(config: &SyntheticConfig) -> Result<()> {
    if config.train_samples == 0 {
        return Err(DatasetError::InvalidConfig("train_samples is zero".into()));
    }
    if config.features == 0 {
        return Err(DatasetError::InvalidConfig("features is zero".into()));
    }
    if config.classes == 0 {
        return Err(DatasetError::InvalidConfig("classes is zero".into()));
    }
    let f = config.difficulty.informative_fraction;
    if !(f > 0.0 && f <= 1.0) {
        return Err(DatasetError::InvalidConfig(format!(
            "informative_fraction {f} outside (0, 1]"
        )));
    }
    if config.difficulty.noise < 0.0 || config.difficulty.separation < 0.0 {
        return Err(DatasetError::InvalidConfig(
            "noise and separation must be non-negative".into(),
        ));
    }
    Ok(())
}

/// Generates a Gaussian class-cluster dataset.
///
/// Each class gets a random center whose first
/// `informative_fraction * features` coordinates are drawn from
/// `N(0, separation^2)` (the rest are zero); samples are the center plus
/// `N(0, noise^2)` perturbations in every coordinate, and labels cycle
/// round-robin so class sizes are balanced. Samples are shuffled within
/// each split.
///
/// # Errors
///
/// Returns [`DatasetError::InvalidConfig`] for zero dimensions or
/// out-of-range difficulty parameters.
///
/// # Examples
///
/// ```
/// use hd_datasets::{generate, SyntheticConfig, DifficultyProfile};
///
/// # fn main() -> Result<(), hd_datasets::DatasetError> {
/// let config = SyntheticConfig {
///     name: "demo".into(),
///     train_samples: 60,
///     test_samples: 20,
///     features: 10,
///     classes: 3,
///     difficulty: DifficultyProfile::default(),
///     seed: 1,
/// };
/// let data = generate(&config)?;
/// assert_eq!(data.train.len(), 60);
/// assert_eq!(data.classes, 3);
/// # Ok(())
/// # }
/// ```
pub fn generate(config: &SyntheticConfig) -> Result<Dataset> {
    validate(config)?;
    let mut rng = DetRng::new(config.seed);
    let n = config.features;
    let k = config.classes;
    let informative =
        ((n as f32 * config.difficulty.informative_fraction).ceil() as usize).clamp(1, n);

    // Class centers: signal in the first `informative` coordinates.
    let centers: Vec<Vec<f32>> = (0..k)
        .map(|_| {
            (0..n)
                .map(|f| {
                    if f < informative {
                        config.difficulty.separation * rng.next_normal()
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect();

    let make_split = |samples: usize, rng: &mut DetRng| -> Split {
        let mut features_m = Matrix::zeros(samples, n);
        let mut labels = Vec::with_capacity(samples);
        for s in 0..samples {
            let class = s % k;
            labels.push(class);
            let row = features_m.row_mut(s);
            for (f, v) in row.iter_mut().enumerate() {
                *v = centers[class][f] + config.difficulty.noise * rng.next_normal();
            }
        }
        let mut split = Split {
            features: features_m,
            labels,
        };
        split.shuffle(rng);
        split
    };

    let train = make_split(config.train_samples, &mut rng);
    let test = make_split(config.test_samples, &mut rng);
    Ok(Dataset {
        name: config.name.clone(),
        classes: k,
        train,
        test,
    })
}

/// Generates the Fig. 10 synthetic feature sweep: one dataset per entry
/// of `feature_counts`, with everything else held fixed.
///
/// # Errors
///
/// Returns [`DatasetError::InvalidConfig`] as [`generate`] does.
pub fn feature_sweep(
    feature_counts: &[usize],
    train_samples: usize,
    test_samples: usize,
    classes: usize,
    seed: u64,
) -> Result<Vec<Dataset>> {
    feature_counts
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            generate(&SyntheticConfig {
                name: format!("sweep-{n}"),
                train_samples,
                test_samples,
                features: n,
                classes,
                difficulty: DifficultyProfile::default(),
                seed: seed.wrapping_add(i as u64),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_config() -> SyntheticConfig {
        SyntheticConfig {
            name: "t".into(),
            train_samples: 90,
            test_samples: 30,
            features: 12,
            classes: 3,
            difficulty: DifficultyProfile::default(),
            seed: 5,
        }
    }

    #[test]
    fn balanced_classes() {
        let d = generate(&base_config()).unwrap();
        for c in 0..3 {
            let count = d.train.labels.iter().filter(|&&l| l == c).count();
            assert_eq!(count, 30, "class {c} imbalanced");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&base_config()).unwrap();
        let b = generate(&base_config()).unwrap();
        assert_eq!(a, b);
        let mut other = base_config();
        other.seed = 6;
        assert_ne!(generate(&other).unwrap(), a);
    }

    #[test]
    fn labels_in_range() {
        let d = generate(&base_config()).unwrap();
        assert!(d.train.labels.iter().all(|&l| l < 3));
        assert!(d.test.labels.iter().all(|&l| l < 3));
    }

    #[test]
    fn higher_separation_is_more_separable() {
        // Measure separability as ratio of between-center to within-class
        // distances on the raw data.
        fn spread_ratio(sep: f32) -> f32 {
            let mut cfg = base_config();
            cfg.difficulty.separation = sep;
            cfg.train_samples = 300;
            let d = generate(&cfg).unwrap();
            // Class means.
            let n = d.feature_count();
            let mut means = vec![vec![0.0f32; n]; 3];
            let mut counts = [0usize; 3];
            for (i, &l) in d.train.labels.iter().enumerate() {
                counts[l] += 1;
                for (f, v) in d.train.features.row(i).iter().enumerate() {
                    means[l][f] += v;
                }
            }
            for (m, &c) in means.iter_mut().zip(&counts) {
                for v in m.iter_mut() {
                    *v /= c as f32;
                }
            }
            let between: f32 = (0..n).map(|f| (means[0][f] - means[1][f]).abs()).sum();
            let mut within = 0.0f32;
            for (i, &l) in d.train.labels.iter().enumerate() {
                within += d
                    .train
                    .features
                    .row(i)
                    .iter()
                    .zip(&means[l])
                    .map(|(a, b)| (a - b).abs())
                    .sum::<f32>();
            }
            between / (within / d.train.len() as f32)
        }
        assert!(spread_ratio(3.0) > spread_ratio(0.3));
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = base_config();
        c.train_samples = 0;
        assert!(generate(&c).is_err());
        let mut c = base_config();
        c.features = 0;
        assert!(generate(&c).is_err());
        let mut c = base_config();
        c.classes = 0;
        assert!(generate(&c).is_err());
        let mut c = base_config();
        c.difficulty.informative_fraction = 0.0;
        assert!(generate(&c).is_err());
        let mut c = base_config();
        c.difficulty.informative_fraction = 1.5;
        assert!(generate(&c).is_err());
        let mut c = base_config();
        c.difficulty.noise = -1.0;
        assert!(generate(&c).is_err());
    }

    #[test]
    fn sweep_produces_requested_widths() {
        let sweep = feature_sweep(&[20, 100, 700], 30, 10, 4, 1).unwrap();
        assert_eq!(sweep.len(), 3);
        assert_eq!(sweep[0].feature_count(), 20);
        assert_eq!(sweep[2].feature_count(), 700);
        for d in &sweep {
            assert_eq!(d.train.len(), 30);
            assert_eq!(d.classes, 4);
        }
    }

    #[test]
    fn zero_test_split_is_allowed() {
        let mut c = base_config();
        c.test_samples = 0;
        let d = generate(&c).unwrap();
        assert!(d.test.is_empty());
    }
}
