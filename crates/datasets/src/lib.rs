//! Synthetic dataset generators mirroring the paper's workloads.
//!
//! The paper evaluates on five real datasets (Table I): FACE, ISOLET,
//! UCIHAR, MNIST and PAMAP2. Those datasets are external artifacts we do
//! not ship; what the experiments actually depend on is their **shape**
//! (samples x features x classes — which drives every runtime result) and
//! the presence of **learnable class structure at a controllable
//! difficulty** (which drives the accuracy trends). This crate provides
//! seeded Gaussian class-cluster generators that reproduce both:
//!
//! * [`DatasetSpec`] + [`registry`] — the Table I inventory, one spec per
//!   paper dataset, with a per-dataset difficulty profile,
//! * [`SyntheticConfig`] / [`generate`] — the generator itself,
//! * [`Dataset`] / [`Split`] — in-memory train/test containers with
//!   z-score normalization,
//! * [`feature_sweep`] — the synthetic feature-count sweep of Fig. 10
//!   (20 to 700 input features).
//!
//! # Examples
//!
//! ```
//! use hd_datasets::{registry, SampleBudget};
//!
//! # fn main() -> Result<(), hd_datasets::DatasetError> {
//! let spec = registry::by_name("isolet").expect("isolet is registered");
//! assert_eq!(spec.features, 617);
//! assert_eq!(spec.classes, 26);
//! // Generate a reduced-size but shape-faithful instance for testing.
//! let data = spec.generate(SampleBudget::Reduced { train: 200, test: 50 }, 1)?;
//! assert_eq!(data.train.features.cols(), 617);
//! assert_eq!(data.train.labels.len(), 200);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod error;
mod generate;
mod spec;

pub mod csv;
pub mod drift;
pub mod registry;

pub use dataset::{Dataset, Split};
pub use error::DatasetError;
pub use generate::{feature_sweep, generate, SyntheticConfig};
pub use spec::{DatasetSpec, DifficultyProfile, SampleBudget};

/// Convenience result alias for fallible dataset operations.
pub type Result<T> = std::result::Result<T, DatasetError>;
